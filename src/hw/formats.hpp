#pragma once
// Hardware number formats and memory images (Sec 3.4 of the paper).
//
// A j-particle lives in chip-local memory as fixed-point positions plus
// reduced-precision floating-point derivatives; an i-particle arrives from
// the host as fixed-point position + float velocity; results leave the
// chip in block floating point. Conversions to/from host doubles happen in
// exactly one place (HostInterface quantizers below) so accuracy studies
// can swap formats wholesale.

#include <cstdint>
#include <span>

#include "hermite/types.hpp"
#include "util/fixedpoint.hpp"
#include "util/softfloat.hpp"
#include "util/vec3.hpp"

namespace g6 {

/// The set of formats used by the pipelines. Defaults reproduce GRAPE-6;
/// tests/ablations swap in wider or narrower variants.
struct NumberFormats {
  /// Coordinate full range (software-chosen scale of the 64-bit word).
  double coord_range = 128.0;
  FloatFormat pipeline = formats::pipeline();
  FloatFormat velocity = formats::velocity();
  FloatFormat predictor = formats::predictor();

  FixedPointCodec coord_codec() const { return FixedPointCodec(coord_range); }

  /// Everything in IEEE double: used to isolate timing behaviour from
  /// rounding in A/B tests.
  static NumberFormats exact() {
    NumberFormats f;
    f.pipeline = formats::ieee_double();
    f.velocity = formats::ieee_double();
    f.predictor = formats::ieee_double();
    return f;
  }
};

/// j-particle as stored in chip memory: the predictor data of Eqs (6)-(7).
struct StoredJParticle {
  std::uint32_t index = 0;  ///< global particle id (self-interaction cut)
  double mass = 0.0;        ///< quantized to pipeline format
  double t0 = 0.0;          ///< block times are exact dyadics
  std::int64_t pos[3] = {0, 0, 0};  ///< 64-bit fixed point
  Vec3 vel;   ///< quantized
  Vec3 acc;   ///< quantized
  Vec3 jerk;  ///< quantized
  Vec3 snap;  ///< quantized
};

/// i-particle as broadcast to the pipelines.
struct IParticlePacket {
  std::uint32_t index = 0;
  std::int64_t pos[3] = {0, 0, 0};  ///< predicted position, fixed point
  Vec3 vel;                          ///< predicted velocity, quantized
  double h2 = 0.0;  ///< neighbor search radius^2 (0 disables the list)
};

/// Block exponents for one i-particle's accumulators, supplied by the host
/// before the run (Sec 3.4); the host remembers last step's values.
struct BlockExponents {
  int acc = 8;
  int jerk = 8;
  int pot = 8;
};

/// Quantize a host-side JParticle into the memory image.
StoredJParticle quantize_j_particle(const JParticle& p, std::uint32_t index,
                                    const NumberFormats& fmt);

/// Quantize a host-side predicted i-particle into the broadcast packet.
IParticlePacket quantize_i_particle(const PredictedState& p, const NumberFormats& fmt);

/// Correctly-rounded arithmetic units lifted to whole spans — the batched
/// pipeline's building blocks. Each op applies the same FloatFormat
/// operation the scalar emulator uses, element by element over contiguous
/// arrays, so a span op is bit-identical to the corresponding scalar loop
/// and the flat bodies autovectorize (quantize() is branch-light bit
/// manipulation; no libm in the loop).
///
/// `out` may alias `a`/`b` (in-place chains are the common use).
namespace spanops {

/// out[k] = f.quantize(in[k])
inline void quantize(const FloatFormat& f, std::span<const double> in,
                     std::span<double> out) {
  G6_ASSERT(in.size() == out.size());
  for (std::size_t k = 0; k < in.size(); ++k) out[k] = f.quantize(in[k]);
}

/// out[k] = f.quantize(s - in[k])  (exact IEEE subtract, one rounding)
inline void qsub_from(const FloatFormat& f, double s, std::span<const double> in,
                      std::span<double> out) {
  G6_ASSERT(in.size() == out.size());
  for (std::size_t k = 0; k < in.size(); ++k) out[k] = f.quantize(s - in[k]);
}

/// out[k] = f.quantize(s * in[k])  (exact IEEE multiply, one rounding)
inline void qscale(const FloatFormat& f, double s, std::span<const double> in,
                   std::span<double> out) {
  G6_ASSERT(in.size() == out.size());
  for (std::size_t k = 0; k < in.size(); ++k) out[k] = f.quantize(s * in[k]);
}

/// out[k] = f.quantize(in[k] / s)  (exact IEEE divide, one rounding)
inline void qdiv_by(const FloatFormat& f, std::span<const double> in, double s,
                    std::span<double> out) {
  G6_ASSERT(in.size() == out.size());
  for (std::size_t k = 0; k < in.size(); ++k) out[k] = f.quantize(in[k] / s);
}

/// out[k] = f.add(a[k], b[k])
inline void qadd(const FloatFormat& f, std::span<const double> a,
                 std::span<const double> b, std::span<double> out) {
  G6_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t k = 0; k < a.size(); ++k) out[k] = f.add(a[k], b[k]);
}

/// out[k] = f.mul(a[k], b[k])
inline void qmul(const FloatFormat& f, std::span<const double> a,
                 std::span<const double> b, std::span<double> out) {
  G6_ASSERT(a.size() == b.size() && a.size() == out.size());
  for (std::size_t k = 0; k < a.size(); ++k) out[k] = f.mul(a[k], b[k]);
}

}  // namespace spanops

}  // namespace g6
