#pragma once
// JStore: the chip-local j-particle memory as a structure of arrays.
//
// The scalar emulator stored j-particles as a std::vector<StoredJParticle>
// (an array of 104-byte structs). The batched pipeline fast path streams
// whole j-ranges through flat inner loops, so the memory is kept column-
// wise instead: one contiguous array per hardware field (fixed-point
// position words, predictor-format derivatives, mass, index, block time).
// This is the SoA particle-store pattern of CabanaMD's `System` (see
// SNIPPETS.md Snippets 1-2) applied to the GRAPE-6 broadcast j-memory.
//
// Two access planes:
//   * column spans (pos/vel/acc/jerk/snap/mass/index/t0) — the hot path;
//     contiguous, read-only views the batched predictor and force loops
//     iterate with unit stride.
//   * whole-word get/set plus to_aos/from_aos — the compatibility view
//     for everything that thinks in memory words: the fault subsystem's
//     bit-flip injection and scrubbing, the self-test vector swap, and
//     the host-side master copies. A word round-trips through get/set
//     bit-exactly.
//
// Layout changes here are invisible to results by construction: the
// pipeline consumes identical field values either way, and
// tests/grape/pipeline_crosscheck_test.cpp holds the scalar and batched
// paths to bit-identical accumulators.

#include <cstdint>
#include <span>
#include <vector>

#include "hw/formats.hpp"
#include "util/check.hpp"

namespace g6 {

class JStore {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drop all words but keep the column capacity (uploads reuse it).
  void clear() { resize(0); }

  /// Resize to exactly `n` slots; new slots are zero words.
  void resize(std::size_t n) {
    index_.resize(n);
    mass_.resize(n);
    t0_.resize(n);
    for (int d = 0; d < 3; ++d) {
      pos_[d].resize(n);
      vel_[d].resize(n);
      acc_[d].resize(n);
      jerk_[d].resize(n);
      snap_[d].resize(n);
    }
    size_ = n;
  }

  /// Pre-size the columns without changing size() (upload pre-sizing).
  void reserve(std::size_t n) {
    index_.reserve(n);
    mass_.reserve(n);
    t0_.reserve(n);
    for (int d = 0; d < 3; ++d) {
      pos_[d].reserve(n);
      vel_[d].reserve(n);
      acc_[d].reserve(n);
      jerk_[d].reserve(n);
      snap_[d].reserve(n);
    }
  }

  /// Grow to at least `n` slots (never shrinks).
  void ensure_size(std::size_t n) {
    if (size_ < n) resize(n);
  }

  /// Scatter one memory word into the columns.
  void set(std::size_t slot, const StoredJParticle& p) {
    G6_ASSERT(slot < size_);
    index_[slot] = p.index;
    mass_[slot] = p.mass;
    t0_[slot] = p.t0;
    for (int d = 0; d < 3; ++d) {
      pos_[d][slot] = p.pos[d];
      vel_[d][slot] = p.vel[d];
      acc_[d][slot] = p.acc[d];
      jerk_[d][slot] = p.jerk[d];
      snap_[d][slot] = p.snap[d];
    }
  }

  /// Gather one memory word from the columns (bit-exact round trip).
  StoredJParticle get(std::size_t slot) const {
    G6_ASSERT(slot < size_);
    StoredJParticle p;
    p.index = index_[slot];
    p.mass = mass_[slot];
    p.t0 = t0_[slot];
    for (int d = 0; d < 3; ++d) {
      p.pos[d] = pos_[d][slot];
      p.vel[d] = vel_[d][slot];
      p.acc[d] = acc_[d][slot];
      p.jerk[d] = jerk_[d][slot];
      p.snap[d] = snap_[d][slot];
    }
    return p;
  }

  // --- hot-path column views (contiguous, unit stride) -------------------
  std::span<const std::uint32_t> index() const { return index_; }
  std::span<const double> mass() const { return mass_; }
  std::span<const double> t0() const { return t0_; }
  std::span<const std::int64_t> pos(int d) const { return pos_[d]; }
  std::span<const double> vel(int d) const { return vel_[d]; }
  std::span<const double> acc(int d) const { return acc_[d]; }
  std::span<const double> jerk(int d) const { return jerk_[d]; }
  std::span<const double> snap(int d) const { return snap_[d]; }

  // --- compatibility plane (fault injection, scrub, self-test) -----------
  std::vector<StoredJParticle> to_aos() const {
    std::vector<StoredJParticle> v(size_);
    for (std::size_t s = 0; s < size_; ++s) v[s] = get(s);
    return v;
  }

  static JStore from_aos(std::span<const StoredJParticle> words) {
    JStore m;
    m.resize(words.size());
    for (std::size_t s = 0; s < words.size(); ++s) m.set(s, words[s]);
    return m;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint32_t> index_;
  std::vector<double> mass_;
  std::vector<double> t0_;
  std::vector<std::int64_t> pos_[3];
  std::vector<double> vel_[3];
  std::vector<double> acc_[3];
  std::vector<double> jerk_[3];
  std::vector<double> snap_[3];
};

}  // namespace g6
