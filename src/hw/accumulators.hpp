#pragma once
// The result-side hardware word format: the block floating-point
// accumulator bank one i-particle owns while a pass runs (Sec 3.4 of the
// paper). Lives in src/hw — the host<->board data contract layer — so the
// fault machinery can checksum, corrupt and vote on accumulator words
// without seeing the machine that produces them (docs/STATIC_ANALYSIS.md,
// "Layer graph").

#include "hw/formats.hpp"
#include "util/fixedpoint.hpp"

namespace g6 {

/// Accumulator bank for one i-particle: 3 acceleration words, 3 jerk
/// words, 1 potential word, all block floating point.
struct HwAccumulators {
  BlockFloatAccumulator acc[3];
  BlockFloatAccumulator jerk[3];
  BlockFloatAccumulator pot;

  void reset(const BlockExponents& e) {
    for (auto& a : acc) a.reset(e.acc);
    for (auto& j : jerk) j.reset(e.jerk);
    pot.reset(e.pot);
  }

  bool overflow() const {
    for (const auto& a : acc)
      if (a.overflow()) return true;
    for (const auto& j : jerk)
      if (j.overflow()) return true;
    return pot.overflow();
  }

  /// Exact merge (the module/board/network-board reduction tree).
  void merge(const HwAccumulators& o) {
    for (int d = 0; d < 3; ++d) {
      acc[d].merge(o.acc[d]);
      jerk[d].merge(o.jerk[d]);
    }
    pot.merge(o.pot);
  }

  /// Decode to a host-side force.
  Force decode() const {
    Force f;
    f.acc = {acc[0].value(), acc[1].value(), acc[2].value()};
    f.jerk = {jerk[0].value(), jerk[1].value(), jerk[2].value()};
    f.pot = pot.value();
    return f;
  }
};

}  // namespace g6
