#include "hw/formats.hpp"

#include <cmath>

#include "util/check.hpp"

namespace g6 {

namespace {
Vec3 quantize_vec(const Vec3& v, const FloatFormat& f) {
  return {f.quantize(v.x), f.quantize(v.y), f.quantize(v.z)};
}
}  // namespace

StoredJParticle quantize_j_particle(const JParticle& p, std::uint32_t index,
                                    const NumberFormats& fmt) {
  G6_REQUIRE_MSG(std::isfinite(p.mass) && p.mass >= 0.0,
                 "j-particle mass must be finite and non-negative");
  G6_REQUIRE_MSG(std::isfinite(p.t0), "j-particle block time must be finite");
  const FixedPointCodec codec = fmt.coord_codec();
  StoredJParticle s;
  s.index = index;
  s.mass = fmt.pipeline.quantize(p.mass);
  s.t0 = p.t0;
  for (int d = 0; d < 3; ++d) s.pos[d] = codec.encode(p.pos[d]);
  s.vel = quantize_vec(p.vel, fmt.velocity);
  s.acc = quantize_vec(p.acc, fmt.predictor);
  s.jerk = quantize_vec(p.jerk, fmt.predictor);
  s.snap = quantize_vec(p.snap, fmt.predictor);
  return s;
}

IParticlePacket quantize_i_particle(const PredictedState& p, const NumberFormats& fmt) {
  const FixedPointCodec codec = fmt.coord_codec();
  IParticlePacket pkt;
  pkt.index = p.index;
  for (int d = 0; d < 3; ++d) pkt.pos[d] = codec.encode(p.pos[d]);
  pkt.vel = quantize_vec(p.vel, fmt.velocity);
  return pkt;
}

}  // namespace g6
