#pragma once
// Individual (block) timestep Hermite integrator — the host-side program
// of the GRAPE-6 system (Sec 1, Sec 4 of the paper). The force backend is
// pluggable: the double-precision CPU engine or the emulated hardware.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "hermite/force_engine.hpp"
#include "hermite/trace.hpp"
#include "nbody/particle.hpp"
#include "obs/eq10.hpp"

namespace g6 {

struct HermiteConfig {
  double eta = 0.02;     ///< Aarseth accuracy parameter
  double eta_s = 0.01;   ///< startup accuracy parameter
  double dt_max = 0.0625;  ///< largest block level (2^-4)
  double dt_min = 9.5367431640625e-7;  ///< smallest block level (2^-20)
  bool record_trace = false;  ///< keep the blockstep schedule
  /// Retries of a force evaluation that raised a TransientFault before the
  /// fault is propagated to the caller (src/fault error taxonomy).
  int max_force_retries = 2;
  /// Overlap host work with the in-flight force evaluation: submit the
  /// block, then correct each chunk as soon as its forces land while
  /// later chunks are still on the (emulated) GRAPE — the paper's
  /// host/GRAPE overlap. Results are bit-identical to the synchronous
  /// path; this moves wall-clock only. false = blocking force call.
  bool async_force = true;
};

/// Complete integrator state at a blockstep boundary — what a checkpoint
/// must capture to resume a run bit-identically (src/fault/checkpoint.hpp).
struct HermiteState {
  double time = 0.0;
  unsigned long long total_steps = 0;
  unsigned long long total_blocksteps = 0;
  std::vector<JParticle> particles;   ///< values + predictor data at t0
  std::vector<double> dt;             ///< per-particle block timestep
  std::vector<Force> last_force;      ///< force at each particle's own t0
};

class HermiteIntegrator {
 public:
  /// The engine must outlive the integrator. `initial` supplies masses,
  /// positions and velocities at t = 0.
  HermiteIntegrator(const ParticleSet& initial, ForceEngine& engine,
                    HermiteConfig config = {});

  /// Resume from a saved state: no initial force computation — particle
  /// data, timesteps and last forces come from the checkpoint, so the
  /// continued run is bit-identical to one that never stopped. Callers
  /// restoring a GRAPE engine must also restore its exponent cache
  /// (GrapeForceEngine::exponents()) AFTER construction, because
  /// load_particles resets it.
  HermiteIntegrator(const HermiteState& state, ForceEngine& engine,
                    HermiteConfig config = {});

  /// Snapshot the full integrator state (deep copy) for checkpointing.
  HermiteState save_state() const;

  /// Current system time (time of the last completed blockstep).
  double time() const { return time_; }
  std::size_t size() const { return particles_.size(); }

  /// Advance one blockstep; returns the number of particles integrated.
  std::size_t step();

  /// Time of the next blockstep boundary (what step() would advance to).
  /// Exposed so external drivers — evolve() here, the serving layer's
  /// quantum loop — can stop exactly at a horizon without overshooting:
  /// run while next_block_time() <= t_end, identically to evolve().
  double next_block_time() const;

  /// Step until system time reaches t_end (block times are dyadic, so the
  /// final step lands exactly on t_end for dyadic t_end).
  void evolve(double t_end);

  /// Particle state predicted to the current system time (for diagnostics
  /// and output; prediction is 4th-order accurate).
  ParticleSet state_at_current_time() const;

  const JParticle& particle(std::size_t i) const { return particles_[i]; }
  double timestep(std::size_t i) const { return dt_[i]; }

  unsigned long long total_steps() const { return total_steps_; }
  unsigned long long total_blocksteps() const { return total_blocksteps_; }
  const BlockstepTrace& trace() const { return trace_; }

  /// Wall-time Eq 10 breakdown of every blockstep run so far: host
  /// (predict + correct + bookkeeping), dma (j-send to the engine), grape
  /// (force evaluation). Always on; zero with GRAPE6_TELEMETRY=OFF.
  const obs::Eq10Accumulator& eq10() const { return eq10_; }

  /// Invoked after every blockstep with (time, block indices); used by the
  /// performance instrumentation.
  void set_block_callback(std::function<void(double, std::span<const std::size_t>)> cb) {
    block_callback_ = std::move(cb);
  }

 private:
  void initialize(const ParticleSet& initial);
  /// compute_forces with bounded TransientFault retry (fault taxonomy);
  /// HardFault and exhausted retries propagate to the caller.
  void compute_forces_guarded(double t, std::span<const PredictedState> block,
                              std::span<Force> out);
  /// submit_forces + per-chunk corrector overlap, with the same bounded
  /// TransientFault retry (transients surface from the submission itself,
  /// before any corrector runs, so a retry never sees partial updates).
  void force_and_correct_overlapped(double t_next);
  /// Corrector + new timestep for block_[lo, hi).
  void correct_range(double t_next, std::size_t lo, std::size_t hi);

  ForceEngine& engine_;
  HermiteConfig cfg_;
  double time_ = 0.0;
  std::vector<JParticle> particles_;
  std::vector<double> dt_;
  std::vector<Force> last_force_;  ///< force at each particle's own t0

  unsigned long long total_steps_ = 0;
  unsigned long long total_blocksteps_ = 0;
  BlockstepTrace trace_;
  obs::Eq10Accumulator eq10_;
  std::function<void(double, std::span<const std::size_t>)> block_callback_;

  // scratch buffers reused across blocksteps
  std::vector<std::size_t> block_;
  std::vector<PredictedState> block_pred_;
  std::vector<Force> block_force_;
};

}  // namespace g6
