#pragma once
// Ahmad-Cohen neighbor scheme on top of the 4th-order Hermite integrator
// (Makino & Aarseth 1992 — reference [10] of the paper, the production
// integrator family of the GRAPE systems).
//
// The force on a particle is split into an *irregular* part from its
// neighbor sphere (radius h_i, list supplied by the GRAPE neighbor
// hardware) and a *regular* part from everything else:
//
//   F = F_irr(neighbors) + F_reg(rest)
//
// The irregular part fluctuates on the encounter timescale and is
// integrated with short steps dt_irr using host-side direct sums over the
// (short) neighbor list; the regular part is smooth and is refreshed only
// every dt_reg >> dt_irr with a full force evaluation on the GRAPE —
// between refreshes it is extrapolated with its own Taylor series.
// The scheme trades a little bookkeeping for a large reduction in full
// N-interaction evaluations (measured by the ablation bench).

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "hermite/force_engine.hpp"
#include "hermite/trace.hpp"
#include "nbody/particle.hpp"
#include "obs/eq10.hpp"

namespace g6 {

struct AhmadCohenConfig {
  double eta_irr = 0.02;   ///< Aarseth parameter for irregular steps
  double eta_reg = 0.05;   ///< for regular steps (regular force is smooth)
  double eta_s = 0.01;     ///< startup parameter
  double dt_max = 0.0625;
  double dt_min = 9.5367431640625e-7;  ///< 2^-20
  std::size_t neighbor_target = 16;    ///< desired neighbor count
  double radius_adjust_limit = 1.26;   ///< max h change per regular step (x/÷)
  bool record_trace = false;           ///< record the irregular blockstep trace
};

class AhmadCohenIntegrator {
 public:
  /// The engine must support neighbor lists (GRAPE or direct reference).
  AhmadCohenIntegrator(const ParticleSet& initial, ForceEngine& engine,
                       AhmadCohenConfig config = {});

  double time() const { return time_; }
  std::size_t size() const { return particles_.size(); }

  /// One irregular blockstep (regular refreshes happen inside when due);
  /// returns the block size.
  std::size_t step();
  void evolve(double t_end);

  ParticleSet state_at_current_time() const;
  const JParticle& particle(std::size_t i) const { return particles_[i]; }

  double neighbor_radius(std::size_t i) const { return std::sqrt(h2_[i]); }
  std::size_t neighbor_count(std::size_t i) const { return neighbors_[i].size(); }
  double mean_neighbor_count() const;

  // --- work counters (the point of the scheme) -------------------------
  unsigned long long irregular_steps() const { return irregular_steps_; }
  unsigned long long regular_steps() const { return regular_steps_; }
  /// Host-side pairwise interactions spent on neighbor sums.
  unsigned long long irregular_interactions() const { return irregular_interactions_; }
  /// Full-N interactions spent on regular refreshes (engine work).
  unsigned long long regular_interactions() const { return regular_interactions_; }
  const BlockstepTrace& trace() const { return trace_; }

  /// Wall-time Eq 10 breakdown: host (irregular sums + correctors), grape
  /// (regular full-force refreshes), dma (j-particle sends).
  const obs::Eq10Accumulator& eq10() const { return eq10_; }

 private:
  void initialize(const ParticleSet& initial);
  double next_block_time() const;
  Force irregular_force(std::size_t i, const Vec3& pos, const Vec3& vel, double t,
                        std::span<const std::uint32_t> list);
  Force predicted_regular(std::size_t i, double t) const;
  void refresh_regular(std::size_t i, double t, const Vec3& pos, const Vec3& vel,
                       const Force& f_irr_new);

  ForceEngine& engine_;
  AhmadCohenConfig cfg_;
  double time_ = 0.0;

  std::vector<JParticle> particles_;  ///< total derivatives (predictor data)
  std::vector<double> dt_irr_;
  std::vector<double> dt_reg_;
  std::vector<double> t_reg_;
  std::vector<Force> f_irr_;   ///< irregular force at the particle's t0
  std::vector<Force> f_reg_;   ///< regular force at t_reg
  std::vector<Vec3> a2_reg_;   ///< regular 2nd derivative at t_reg
  std::vector<std::vector<std::uint32_t>> neighbors_;
  std::vector<double> h2_;

  unsigned long long irregular_steps_ = 0;
  unsigned long long regular_steps_ = 0;
  unsigned long long irregular_interactions_ = 0;
  unsigned long long regular_interactions_ = 0;
  unsigned long long blocksteps_ = 0;
  BlockstepTrace trace_;
  obs::Eq10Accumulator eq10_;

  // scratch
  std::vector<std::size_t> block_;
};

}  // namespace g6
