#include "hermite/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/errors.hpp"
#include "hermite/scheme.hpp"
#include "obs/clock.hpp"
#include "obs/context.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6 {

namespace {

/// Flight-record a bounded force retry, charged to the serve job this
/// thread is working for (0 standalone).
void record_force_retry(int attempt) {
  const obs::MetricScope* scope = obs::ScopedMetricScope::current();
  obs::FlightRecorder::global().record(
      obs::FlightEventType::kRetry, scope != nullptr ? scope->job() : 0,
      attempt, 0, "force_retry");
}

}  // namespace

HermiteIntegrator::HermiteIntegrator(const ParticleSet& initial, ForceEngine& engine,
                                     HermiteConfig config)
    : engine_(engine), cfg_(config) {
  G6_REQUIRE(initial.size() >= 2);
  G6_REQUIRE(cfg_.eta > 0.0 && cfg_.eta_s > 0.0);
  G6_REQUIRE(cfg_.dt_min > 0.0 && cfg_.dt_max >= cfg_.dt_min);
  initialize(initial);
}

HermiteIntegrator::HermiteIntegrator(const HermiteState& state, ForceEngine& engine,
                                     HermiteConfig config)
    : engine_(engine), cfg_(config) {
  G6_REQUIRE(state.particles.size() >= 2);
  G6_REQUIRE(state.dt.size() == state.particles.size());
  G6_REQUIRE(state.last_force.size() == state.particles.size());
  G6_REQUIRE(cfg_.eta > 0.0 && cfg_.eta_s > 0.0);
  G6_REQUIRE(cfg_.dt_min > 0.0 && cfg_.dt_max >= cfg_.dt_min);
  time_ = state.time;
  total_steps_ = state.total_steps;
  total_blocksteps_ = state.total_blocksteps;
  particles_ = state.particles;
  dt_ = state.dt;
  last_force_ = state.last_force;
  // Upload the restored particle data; no force evaluation happens here,
  // so the first post-resume blockstep sees exactly the same engine state
  // as the uninterrupted run (the caller restores the exponent cache).
  engine_.load_particles(particles_);
  trace_.n_particles = particles_.size();
  trace_.t_begin = time_;
  trace_.t_end = time_;
}

HermiteState HermiteIntegrator::save_state() const {
  HermiteState s;
  s.time = time_;
  s.total_steps = total_steps_;
  s.total_blocksteps = total_blocksteps_;
  s.particles = particles_;
  s.dt = dt_;
  s.last_force = last_force_;
  return s;
}

void HermiteIntegrator::compute_forces_guarded(
    double t, std::span<const PredictedState> block, std::span<Force> out) {
  for (int attempt = 0;; ++attempt) {
    try {
      engine_.compute_forces(t, block, out);
      return;
    } catch (const fault::TransientFault&) {
      // Transients are expected to clear on a clean re-issue (the engine
      // resets its per-pass state); bounded so a permanently sick engine
      // surfaces instead of looping.
      if (attempt >= cfg_.max_force_retries) throw;
      obs::MetricsRegistry::global()
          .counter("fault.recovered.force_retries")
          .add(1);
      record_force_retry(attempt);
    }
  }
}

void HermiteIntegrator::correct_range(double t_next, std::size_t lo,
                                      std::size_t hi) {
  for (std::size_t k = lo; k < hi; ++k) {
    const std::size_t i = block_[k];
    JParticle& p = particles_[i];
    const double dt = t_next - p.t0;
    const Force& f1 = block_force_[k];

    const HermiteDerivatives d = hermite_interpolate(last_force_[i], f1, dt);
    Vec3 pos = block_pred_[k].pos;
    Vec3 vel = block_pred_[k].vel;
    hermite_correct(d, dt, pos, vel);

    const Vec3 a2_t1 = d.a2 + dt * d.a3;
    double dt_req = aarseth_timestep(f1, a2_t1, d.a3, cfg_.eta);
    dt_req = std::min(dt_req, 2.0 * dt);  // grow at most one level per step
    double dt_new = quantize_timestep(dt_req, cfg_.dt_min, cfg_.dt_max);
    dt_new = commensurate_timestep(t_next, dt_new, cfg_.dt_min);

    p.pos = pos;
    p.vel = vel;
    p.acc = f1.acc;
    p.jerk = f1.jerk;
    p.snap = a2_t1;
    p.t0 = t_next;
    dt_[i] = dt_new;
    last_force_[i] = f1;
  }
}

void HermiteIntegrator::force_and_correct_overlapped(double t_next) {
  static obs::Gauge& g_overlap =
      obs::MetricsRegistry::global().gauge("exec.overlap.host_s");
  for (int attempt = 0;; ++attempt) {
    try {
      // A transient fault (serial fault-injection mode) throws from the
      // submission itself, before any corrector below has touched the
      // particles — so the retry re-issues a clean evaluation.
      ForceTicket tk =
          engine_.submit_forces(t_next, block_pred_, block_force_);
      double hidden_s = 0.0;
      {
        G6_PHASE("hermite.correct");
        for (std::size_t c = 0; c < tk.chunk_count(); ++c) {
          tk.wait_chunk(c);
          const auto [lo, hi] = tk.chunk_range(c);
          const double h0 = obs::monotonic_seconds();
          correct_range(t_next, lo, hi);
          hidden_s += obs::monotonic_seconds() - h0;
        }
      }
      tk.wait();
      g_overlap.add(hidden_s);
      return;
    } catch (const fault::TransientFault&) {
      if (attempt >= cfg_.max_force_retries) throw;
      obs::MetricsRegistry::global()
          .counter("fault.recovered.force_retries")
          .add(1);
      record_force_retry(attempt);
    }
  }
}

void HermiteIntegrator::initialize(const ParticleSet& initial) {
  const std::size_t n = initial.size();
  particles_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    particles_[i].mass = initial[i].mass;
    particles_[i].pos = initial[i].pos;
    particles_[i].vel = initial[i].vel;
    particles_[i].t0 = 0.0;
  }
  dt_.assign(n, cfg_.dt_max);
  last_force_.resize(n);

  engine_.load_particles(particles_);

  // Initial forces on every particle at t = 0.
  std::vector<PredictedState> pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    pred[i] = {particles_[i].pos, particles_[i].vel, particles_[i].mass,
               static_cast<std::uint32_t>(i)};
  }
  std::vector<Force> forces(n);
  compute_forces_guarded(0.0, pred, forces);

  for (std::size_t i = 0; i < n; ++i) {
    particles_[i].acc = forces[i].acc;
    particles_[i].jerk = forces[i].jerk;
    particles_[i].snap = {};
    last_force_[i] = forces[i];
    const double dt_req = initial_timestep(forces[i], cfg_.eta_s);
    dt_[i] = quantize_timestep(dt_req, cfg_.dt_min, cfg_.dt_max);
    engine_.update_particle(i, particles_[i]);
  }

  trace_.n_particles = n;
  trace_.t_begin = 0.0;
  trace_.t_end = 0.0;
}

double HermiteIntegrator::next_block_time() const {
  double t_next = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    t_next = std::min(t_next, particles_[i].t0 + dt_[i]);
  }
  return t_next;
}

std::size_t HermiteIntegrator::step() {
  obs::Eq10Stepper eq(eq10_);  // opens attributing to kHost
  G6_PHASE("hermite.blockstep");
  const double t_next = next_block_time();

  // Gather the block: everyone whose step ends exactly at t_next. Times
  // live on the dyadic grid, so exact comparison is correct.
  block_.clear();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_[i].t0 + dt_[i] == t_next) block_.push_back(i);
  }
  G6_ASSERT(!block_.empty());

  {
    // Host-side prediction of the i-particles (Eqs 6-7 in double
    // precision; the hardware predicts the j side).
    G6_PHASE("hermite.predict");
    block_pred_.resize(block_.size());
    for (std::size_t k = 0; k < block_.size(); ++k) {
      const std::size_t i = block_[k];
      Vec3 xp, vp;
      hermite_predict_cubic(particles_[i], t_next, xp, vp);
      block_pred_[k] = {xp, vp, particles_[i].mass,
                        static_cast<std::uint32_t>(i)};
    }
  }

  block_force_.resize(block_.size());
  if (cfg_.async_force) {
    // Overlapped mode: submit, then correct each chunk as its forces
    // arrive. The corrector runs inside the kGrape wall-clock window —
    // that host time hides behind the in-flight force work, so Eq 10
    // must not charge it to T_host a second time; the hidden seconds are
    // reported separately as exec.overlap.host_s.
    eq.phase(obs::Eq10Stepper::Phase::kGrape);
    {
      G6_PHASE("hermite.force");
      force_and_correct_overlapped(t_next);
    }
    eq.phase(obs::Eq10Stepper::Phase::kHost);
  } else {
    eq.phase(obs::Eq10Stepper::Phase::kGrape);
    {
      G6_PHASE("hermite.force");
      compute_forces_guarded(t_next, block_pred_, block_force_);
    }
    eq.phase(obs::Eq10Stepper::Phase::kHost);
    {
      // Corrector + new timestep per block member.
      G6_PHASE("hermite.correct");
      correct_range(t_next, 0, block_.size());
    }
  }

  eq.phase(obs::Eq10Stepper::Phase::kDma);
  {
    // Push the corrected block to the engine's j-memory (the paper's
    // j-particle send; one DMA on the emulated hardware).
    G6_PHASE("hermite.j-send");
    for (std::size_t i : block_) engine_.update_particle(i, particles_[i]);
  }
  eq.phase(obs::Eq10Stepper::Phase::kHost);

  obs::MetricsRegistry::global()
      .histogram("hermite.block_size", 0.0, 4096.0, 64)
      .observe(static_cast<double>(block_.size()));
  eq10_.add_steps(block_.size());

  time_ = t_next;
  total_steps_ += block_.size();
  ++total_blocksteps_;
  if (cfg_.record_trace) {
    trace_.records.push_back({t_next, static_cast<std::uint32_t>(block_.size())});
    trace_.t_end = t_next;
  }
  if (block_callback_) block_callback_(t_next, block_);
  return block_.size();
}

void HermiteIntegrator::evolve(double t_end) {
  G6_REQUIRE(t_end >= time_);
  while (next_block_time() <= t_end) {
    step();
  }
  trace_.t_end = std::max(trace_.t_end, time_);
}

ParticleSet HermiteIntegrator::state_at_current_time() const {
  ParticleSet out;
  out.reserve(particles_.size());
  for (const auto& p : particles_) {
    Body b;
    b.mass = p.mass;
    hermite_predict(p, time_, b.pos, b.vel);
    out.add(b);
  }
  return out;
}

}  // namespace g6
