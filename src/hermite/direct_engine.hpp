#pragma once
// Double-precision CPU force engine: the reference implementation of
// Eqs (1)-(3) plus on-the-fly prediction of the j-particles (the work the
// GRAPE predictor pipeline does in hardware). The i-loop fans out over the
// shared exec::ThreadPool (deterministic static partitioning).

#include <cstddef>
#include <span>
#include <vector>

#include "hermite/force_engine.hpp"

namespace g6 {

class DirectForceEngine final : public ForceEngine {
 public:
  /// `eps` is the Plummer softening; `threads` caps the i-loop fan-out on
  /// the shared exec pool (0 = use the pool's full parallelism, 1 = serial).
  explicit DirectForceEngine(double eps, unsigned threads = 0);

  void load_particles(std::span<const JParticle> particles) override;
  void update_particle(std::size_t index, const JParticle& p) override;
  void compute_forces(double t, std::span<const PredictedState> block,
                      std::span<Force> out) override;
  void compute_forces_neighbors(double t, std::span<const PredictedState> block,
                                std::span<const double> radii2,
                                std::span<Force> out,
                                std::span<NeighborResult> neighbors) override;
  bool supports_neighbors() const override { return true; }
  double softening() const override { return eps_; }
  std::size_t size() const override { return particles_.size(); }

  /// Total pairwise interactions evaluated so far (flop accounting).
  unsigned long long interactions() const { return interactions_; }

 private:
  void predict_all(double t);

  double eps_;
  unsigned threads_;
  std::vector<JParticle> particles_;
  std::vector<Vec3> pred_pos_;
  std::vector<Vec3> pred_vel_;
  unsigned long long interactions_ = 0;
};

/// One pairwise interaction in double precision (shared with tests and the
/// treecode's near-field): accumulates Eqs (1)-(3) contributions of a
/// j-particle at (pos_j, vel_j, m_j) onto the force on an i-particle.
void accumulate_pairwise(const Vec3& pos_i, const Vec3& vel_i, const Vec3& pos_j,
                         const Vec3& vel_j, double mass_j, double eps2, Force& f);

}  // namespace g6
