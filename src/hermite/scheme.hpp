#pragma once
// The 4th-order Hermite scheme of Makino & Aarseth (1992): predictor
// polynomials (paper Eqs 6-7), the two-force corrector, and the Aarseth
// timestep criterion. Factored into free functions so the serial
// integrator, the GRAPE emulator's predictor pipeline tests, and the
// parallel blockstep algorithms all share one implementation.

#include "hermite/types.hpp"

namespace g6 {

/// Predict position and velocity of particle state (x0,v0,a0,j0,s0 at t0)
/// to time t. Includes the snap term exactly as the GRAPE-6 predictor
/// pipeline does (Eqs 6-7).
void hermite_predict(const JParticle& p, double t, Vec3& pos_out, Vec3& vel_out);

/// Cubic predictor (no snap term) — the host-side i-particle prediction.
/// The corrector formula below assumes exactly this truncation; feeding it
/// a snap-augmented prediction double-counts the 4th-order term.
void hermite_predict_cubic(const JParticle& p, double t, Vec3& pos_out,
                           Vec3& vel_out);

/// Interpolated higher derivatives over a step of length dt, from the
/// forces at both ends. a2/a3 are evaluated at the *start* of the step.
struct HermiteDerivatives {
  Vec3 a2;  ///< second derivative of acceleration at t0
  Vec3 a3;  ///< third derivative (constant over the step)
};

HermiteDerivatives hermite_interpolate(const Force& f0, const Force& f1, double dt);

/// Apply the 4th/5th-order corrector to the predicted state.
void hermite_correct(const HermiteDerivatives& d, double dt, Vec3& pos, Vec3& vel);

/// Aarseth timestep criterion using quantities at the end of the step
/// (a2 advanced to t1).
double aarseth_timestep(const Force& f1, const Vec3& a2_t1, const Vec3& a3,
                        double eta);

/// Initial timestep before any derivative history exists.
double initial_timestep(const Force& f, double eta_s);

/// Largest power-of-two step <= dt_req, clamped to [dt_min, dt_max].
double quantize_timestep(double dt_req, double dt_min, double dt_max);

/// Block-commensurability rule: a particle at time t may adopt dt_new only
/// if t is an integer multiple of dt_new; otherwise halve until it is.
double commensurate_timestep(double t, double dt_new, double dt_min);

}  // namespace g6
