#include "hermite/force_engine.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace g6 {

void ForceEngine::compute_forces_neighbors(double, std::span<const PredictedState>,
                                           std::span<const double>,
                                           std::span<Force>,
                                           std::span<NeighborResult>) {
  throw std::logic_error(
      "this force engine has no neighbor-list support; "
      "check supports_neighbors() before calling");
}

ForceTicket ForceEngine::submit_forces(double t,
                                       std::span<const PredictedState> block,
                                       std::span<Force> out) {
  G6_REQUIRE(out.size() == block.size());
  auto& pool = exec::ThreadPool::global();
  ForceTicket tk = ForceTicket::make({{0, block.size()}}, nullptr, pool);
  tk.dispatch(
      0, [this, t, block, out] { compute_forces(t, block, out); },
      /*parallel=*/pool.worker_count() > 0);
  return tk;
}

}  // namespace g6
