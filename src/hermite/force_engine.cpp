#include "hermite/force_engine.hpp"

#include <stdexcept>

namespace g6 {

void ForceEngine::compute_forces_neighbors(double, std::span<const PredictedState>,
                                           std::span<const double>,
                                           std::span<Force>,
                                           std::span<NeighborResult>) {
  throw std::logic_error(
      "this force engine has no neighbor-list support; "
      "check supports_neighbors() before calling");
}

}  // namespace g6
