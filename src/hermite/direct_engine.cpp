#include "hermite/direct_engine.hpp"

#include <cmath>
#include <limits>

#include "exec/parallel_for.hpp"
#include "hermite/scheme.hpp"
#include "util/check.hpp"
#include "util/units.hpp"

namespace g6 {

void accumulate_pairwise(const Vec3& pos_i, const Vec3& vel_i, const Vec3& pos_j,
                         const Vec3& vel_j, double mass_j, double eps2, Force& f) {
  const Vec3 dr = pos_j - pos_i;
  const Vec3 dv = vel_j - vel_i;
  const double r2 = norm2(dr) + eps2;
  const double rinv = 1.0 / std::sqrt(r2);
  const double rinv2 = rinv * rinv;
  const double mrinv3 = units::kGravity * mass_j * rinv * rinv2;
  const double rv = 3.0 * dot(dr, dv) * rinv2;
  f.acc += mrinv3 * dr;
  f.jerk += mrinv3 * (dv - rv * dr);
  f.pot -= units::kGravity * mass_j * rinv;
}

DirectForceEngine::DirectForceEngine(double eps, unsigned threads)
    : eps_(eps), threads_(threads) {
  G6_REQUIRE(eps >= 0.0);
}

void DirectForceEngine::load_particles(std::span<const JParticle> particles) {
  particles_.assign(particles.begin(), particles.end());
  pred_pos_.resize(particles_.size());
  pred_vel_.resize(particles_.size());
}

void DirectForceEngine::update_particle(std::size_t index, const JParticle& p) {
  G6_REQUIRE(index < particles_.size());
  particles_[index] = p;
}

void DirectForceEngine::predict_all(double t) {
  for (std::size_t j = 0; j < particles_.size(); ++j) {
    hermite_predict(particles_[j], t, pred_pos_[j], pred_vel_[j]);
  }
}

void DirectForceEngine::compute_forces(double t, std::span<const PredictedState> block,
                                       std::span<Force> out) {
  G6_REQUIRE(block.size() == out.size());
  predict_all(t);
  const double eps2 = eps_ * eps_;

  const auto work = [&](std::size_t begin, std::size_t end) {
    for (std::size_t bi = begin; bi < end; ++bi) {
      const PredictedState& ip = block[bi];
      Force f;
      for (std::size_t j = 0; j < particles_.size(); ++j) {
        if (j == ip.index) continue;  // no self-interaction
        accumulate_pairwise(ip.pos, ip.vel, pred_pos_[j], pred_vel_[j],
                            particles_[j].mass, eps2, f);
      }
      out[bi] = f;
    }
  };

  // Rows write only out[bi]: disjoint outputs, so the shared pool keeps
  // the result bit-identical at any thread count.
  exec::parallel_for(0, block.size(), work, {.threads = threads_, .grain = 2});
  // Self-interactions are skipped, so each block row costs (N-1) pairs.
  interactions_ += static_cast<unsigned long long>(block.size()) *
                   (particles_.size() - 1);
}

void DirectForceEngine::compute_forces_neighbors(
    double t, std::span<const PredictedState> block, std::span<const double> radii2,
    std::span<Force> out, std::span<NeighborResult> neighbors) {
  G6_REQUIRE(block.size() == out.size());
  G6_REQUIRE(block.size() == radii2.size());
  G6_REQUIRE(block.size() == neighbors.size());
  predict_all(t);
  const double eps2 = eps_ * eps_;

  for (std::size_t bi = 0; bi < block.size(); ++bi) {
    const PredictedState& ip = block[bi];
    Force f;
    NeighborResult& nb = neighbors[bi];
    nb.indices.clear();
    nb.overflow = false;
    nb.nearest = ip.index;
    nb.nearest_r2 = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < particles_.size(); ++j) {
      if (j == ip.index) continue;
      const double r2 = norm2(pred_pos_[j] - ip.pos) + eps2;
      if (r2 < radii2[bi]) nb.indices.push_back(static_cast<std::uint32_t>(j));
      if (r2 < nb.nearest_r2) {
        nb.nearest_r2 = r2;
        nb.nearest = static_cast<std::uint32_t>(j);
      }
      accumulate_pairwise(ip.pos, ip.vel, pred_pos_[j], pred_vel_[j],
                          particles_[j].mass, eps2, f);
    }
    out[bi] = f;
  }
  interactions_ += static_cast<unsigned long long>(block.size()) *
                   (particles_.size() - 1);
}

}  // namespace g6
