#pragma once
// Blockstep trace: the schedule of (time, block size) produced by an
// individual-timestep integration. The performance model consumes traces —
// measured ones at small N, synthesized ones at large N (DESIGN.md Sec 5).

#include <cstdint>
#include <vector>

namespace g6 {

struct BlockstepRecord {
  double time = 0.0;           ///< system time of the blockstep
  std::uint32_t block_size = 0;  ///< particles advanced in this blockstep
};

struct BlockstepTrace {
  std::vector<BlockstepRecord> records;
  std::size_t n_particles = 0;
  double t_begin = 0.0;
  double t_end = 0.0;

  /// Total individual particle steps.
  unsigned long long total_steps() const {
    unsigned long long s = 0;
    for (const auto& r : records) s += r.block_size;
    return s;
  }

  double span() const { return t_end - t_begin; }

  /// Individual steps per particle per unit time.
  double steps_per_particle_per_time() const {
    if (n_particles == 0 || span() <= 0.0) return 0.0;
    return static_cast<double>(total_steps()) /
           (static_cast<double>(n_particles) * span());
  }

  /// Mean block size.
  double mean_block_size() const {
    if (records.empty()) return 0.0;
    return static_cast<double>(total_steps()) / static_cast<double>(records.size());
  }
};

}  // namespace g6
