#pragma once
// Shared types for the Hermite individual-timestep machinery.

#include <cstdint>
#include <vector>

#include "util/vec3.hpp"

namespace g6 {

/// Result of a force evaluation on one i-particle: Eqs (1)-(3).
struct Force {
  Vec3 acc;    ///< gravitational acceleration a_i
  Vec3 jerk;   ///< its time derivative adot_i
  double pot = 0.0;  ///< potential phi_i (negative)
};

/// Predicted phase-space state of an i-particle at the current system time
/// (what the host sends to the hardware).
struct PredictedState {
  Vec3 pos;
  Vec3 vel;
  double mass = 0.0;
  std::uint32_t index = 0;  ///< identity of the particle (self-interaction cut)
};

/// Neighbor information returned by a force evaluation (the GRAPE-6
/// hardware writes a neighbor list for each i-particle given a search
/// radius, plus the nearest neighbor — used by the Ahmad-Cohen scheme and
/// by collision detection in planetesimal runs).
struct NeighborResult {
  std::vector<std::uint32_t> indices;  ///< j with r^2 < h^2 (self excluded)
  std::uint32_t nearest = 0;           ///< index of the nearest j
  double nearest_r2 = 0.0;             ///< its softened distance^2
  bool overflow = false;               ///< hardware neighbor buffer overflowed
};

/// Full per-particle j-side data as stored in GRAPE memory: values at the
/// particle's own time t0 plus the predictor coefficients (Eqs 6-7).
struct JParticle {
  double mass = 0.0;
  double t0 = 0.0;
  Vec3 pos;
  Vec3 vel;
  Vec3 acc;
  Vec3 jerk;
  Vec3 snap;  ///< a^(2), second derivative of acceleration
};

}  // namespace g6
