#pragma once
// Abstract force backend for the Hermite integrator.
//
// The interface mirrors the GRAPE host API: the engine holds the j-particle
// memory (full predictor data per particle); the integrator writes updated
// particles back after each corrector and asks for forces on the current
// block at the current system time. Implementations:
//
//   DirectForceEngine  — double-precision CPU reference (this file's sibling)
//   GrapeForceEngine   — bit-level GRAPE-6 hardware emulation (src/grape)

#include <cstddef>
#include <span>

#include "hermite/force_ticket.hpp"
#include "hermite/types.hpp"

namespace g6 {

class ForceEngine {
 public:
  virtual ~ForceEngine() = default;

  /// (Re)load the whole j-particle memory. Called once at startup.
  virtual void load_particles(std::span<const JParticle> particles) = 0;

  /// Write back one updated particle after its corrector.
  virtual void update_particle(std::size_t index, const JParticle& p) = 0;

  /// Compute forces at system time `t` on the given predicted i-particles.
  /// The engine predicts its stored j-particles to `t` internally and skips
  /// the self-interaction via PredictedState::index. `out` must have the
  /// same length as `block`.
  virtual void compute_forces(double t, std::span<const PredictedState> block,
                              std::span<Force> out) = 0;

  /// Plummer softening used in Eqs (1)-(3).
  virtual double softening() const = 0;

  /// Number of j-particles currently loaded.
  virtual std::size_t size() const = 0;

  /// Asynchronous variant of compute_forces: start the evaluation and
  /// return a ticket the caller joins with wait()/wait_chunk() while doing
  /// other host work in between (the GRAPE-overlap pattern of the paper).
  /// `block` and `out` must stay alive until the ticket is waited or
  /// destroyed. Only one submission may be in flight per engine. The base
  /// implementation runs the whole blocking compute_forces as a single
  /// pool task (inline when the pool has no workers), so every engine is
  /// submit-capable; engines override it for finer-grained chunking.
  virtual ForceTicket submit_forces(double t,
                                    std::span<const PredictedState> block,
                                    std::span<Force> out);

  /// Forces plus neighbor lists: neighbors of block[k] are the stored j
  /// with |r_ij|^2 + eps^2 < radii2[k], self excluded. Engines without
  /// neighbor hardware throw; check supports_neighbors() first.
  virtual void compute_forces_neighbors(double t,
                                        std::span<const PredictedState> block,
                                        std::span<const double> radii2,
                                        std::span<Force> out,
                                        std::span<NeighborResult> neighbors);
  virtual bool supports_neighbors() const { return false; }
};

}  // namespace g6
