#pragma once
// Handle to an in-flight force evaluation (ForceEngine::submit_forces).
//
// The evaluation is split into chunks of contiguous i-indices; each chunk
// becomes one pool task. The caller may consume results incrementally —
// wait_chunk(c) then correct block[chunk_range(c)] while later chunks are
// still on the GRAPE — and must finish with wait(), which joins everything
// and runs the engine's epilogue (accounting fold, busy-guard release).
// All waits help the pool (ThreadPool::try_run_one), so a blocked caller
// still contributes a core.
//
// Failure surface: errors are rethrown deterministically — wait() always
// surfaces the error of the smallest-index failed chunk, no matter which
// chunk failed first on the wall clock. A destroyed ticket joins and runs
// the epilogue with ok=false semantics for errors, swallowing them
// (destructors must not throw); call wait() to observe failures.

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace g6 {

class ForceTicket {
 public:
  /// An invalid (empty) ticket; wait() on it is a no-op.
  ForceTicket() = default;
  ~ForceTicket();
  ForceTicket(ForceTicket&&) noexcept = default;
  ForceTicket& operator=(ForceTicket&&) noexcept;
  ForceTicket(const ForceTicket&) = delete;
  ForceTicket& operator=(const ForceTicket&) = delete;

  bool valid() const { return job_ != nullptr; }
  std::size_t chunk_count() const;
  /// Half-open i-index range [first, second) covered by chunk c.
  std::pair<std::size_t, std::size_t> chunk_range(std::size_t c) const;

  /// Block (helping the pool) until chunk c has finished; rethrows that
  /// chunk's exception, if any. Results for chunk_range(c) are readable
  /// afterwards. Does NOT run the epilogue — wait() must still be called.
  void wait_chunk(std::size_t c);

  /// Join all chunks, run the engine epilogue exactly once (ok = no chunk
  /// failed), then rethrow the smallest-index chunk error if there was
  /// one. Idempotent: later calls return immediately.
  void wait();

  // --- engine-side construction ------------------------------------------
  /// `epilogue(ok)` runs once at completion: fold accounting when every
  /// chunk succeeded (ok), and in both cases release the engine's
  /// busy guard. Must not throw.
  static ForceTicket make(std::vector<std::pair<std::size_t, std::size_t>> ranges,
                          std::function<void(bool)> epilogue,
                          exec::ThreadPool& pool = exec::ThreadPool::global());

  /// Launch chunk c. With parallel=true the body runs as a pool task and
  /// its exception is captured for the waiters. With parallel=false the
  /// body runs inline on this thread and exceptions PROPAGATE to the
  /// submitter after being recorded — the serial path (no workers, or a
  /// fault injector that must stay single-threaded) surfaces faults from
  /// submit_forces itself, before any caller-side work overlaps.
  void dispatch(std::size_t c, exec::Task body, bool parallel);

 private:
  struct Job;
  void finish(bool rethrow);

  std::shared_ptr<Job> job_;
};

}  // namespace g6
