#include "hermite/force_ticket.hpp"

#include <exception>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace g6 {

namespace {
// Per-chunk lifecycle. kIdle chunks were never dispatched (a serial-mode
// prologue threw part-way through) and are not waited on.
enum : unsigned char { kIdle = 0, kInFlight = 1, kDone = 2 };
}  // namespace

struct ForceTicket::Job {
  exec::ThreadPool* pool = nullptr;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::function<void(bool)> epilogue;

  Mutex m;
  CondVar cv;
  std::vector<unsigned char> state G6_GUARDED_BY(m);
  std::vector<std::exception_ptr> err G6_GUARDED_BY(m);
  bool finished G6_GUARDED_BY(m) = false;  // epilogue already ran

  bool chunk_done(std::size_t c) {
    MutexLock lk(m);
    return state[c] != kInFlight;
  }

  void wait_chunk(std::size_t c) {
    for (;;) {
      if (chunk_done(c)) return;
      // Help instead of blocking — the task we pick up may be our own
      // chunk. Never run tasks under m: completions lock it.
      if (pool->try_run_one()) continue;
      MutexLock lk(m);
      if (state[c] != kInFlight) return;
      cv.wait(m);
    }
  }
};

ForceTicket::~ForceTicket() { finish(/*rethrow=*/false); }

ForceTicket& ForceTicket::operator=(ForceTicket&& o) noexcept {
  if (this != &o) {
    finish(/*rethrow=*/false);
    job_ = std::move(o.job_);
  }
  return *this;
}

std::size_t ForceTicket::chunk_count() const {
  G6_REQUIRE(job_ != nullptr);
  return job_->ranges.size();
}

std::pair<std::size_t, std::size_t> ForceTicket::chunk_range(
    std::size_t c) const {
  G6_REQUIRE(job_ != nullptr);
  G6_REQUIRE(c < job_->ranges.size());
  return job_->ranges[c];
}

void ForceTicket::wait_chunk(std::size_t c) {
  G6_REQUIRE(job_ != nullptr);
  G6_REQUIRE(c < job_->ranges.size());
  job_->wait_chunk(c);
  MutexLock lk(job_->m);
  if (job_->err[c]) std::rethrow_exception(job_->err[c]);
}

void ForceTicket::wait() { finish(/*rethrow=*/true); }

void ForceTicket::finish(bool rethrow) {
  if (!job_) return;
  for (std::size_t c = 0; c < job_->ranges.size(); ++c) job_->wait_chunk(c);
  std::exception_ptr first;
  {
    MutexLock lk(job_->m);
    for (const auto& e : job_->err) {
      if (e) {
        first = e;  // errors are indexed by chunk: this IS the smallest
        break;
      }
    }
    if (!job_->finished) {
      job_->finished = true;
      if (job_->epilogue) job_->epilogue(first == nullptr);
    }
  }
  if (rethrow && first) {
    job_ = nullptr;
    std::rethrow_exception(first);
  }
  job_ = nullptr;
}

ForceTicket ForceTicket::make(
    std::vector<std::pair<std::size_t, std::size_t>> ranges,
    std::function<void(bool)> epilogue, exec::ThreadPool& pool) {
  G6_REQUIRE(!ranges.empty());
  ForceTicket tk;
  tk.job_ = std::make_shared<Job>();
  tk.job_->pool = &pool;
  tk.job_->ranges = std::move(ranges);
  tk.job_->epilogue = std::move(epilogue);
  // Pre-publication, so uncontended — locked to honor the guard contract.
  MutexLock lk(tk.job_->m);
  tk.job_->state.assign(tk.job_->ranges.size(), kIdle);
  tk.job_->err.resize(tk.job_->ranges.size());
  return tk;
}

void ForceTicket::dispatch(std::size_t c, exec::Task body, bool parallel) {
  G6_REQUIRE(job_ != nullptr);
  G6_REQUIRE(c < job_->ranges.size());
  {
    MutexLock lk(job_->m);
    G6_REQUIRE(job_->state[c] == kIdle);
    job_->state[c] = kInFlight;
  }
  if (!parallel) {
    // Serial path: run here, record the error for uniform bookkeeping,
    // then let it propagate so submit_forces throws before the caller
    // overlaps anything (faults must precede any corrector work).
    try {
      body();
    } catch (...) {
      MutexLock lk(job_->m);
      job_->err[c] = std::current_exception();
      job_->state[c] = kDone;
      throw;
    }
    MutexLock lk(job_->m);
    job_->state[c] = kDone;
    return;
  }
  auto job = job_;
  job_->pool->submit([job, c, body = std::move(body)]() {
    std::exception_ptr err;
    try {
      body();
    } catch (...) {
      err = std::current_exception();
    }
    MutexLock lk(job->m);
    job->err[c] = err;
    job->state[c] = kDone;
    job->cv.notify_all();
  });
}

}  // namespace g6
