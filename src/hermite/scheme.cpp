#include "hermite/scheme.hpp"

#include <cmath>

#include "util/check.hpp"

namespace g6 {

void hermite_predict(const JParticle& p, double t, Vec3& pos_out, Vec3& vel_out) {
  const double dt = t - p.t0;
  const double dt2 = dt * dt;
  // Horner evaluation of Eqs (6)-(7); the snap term uses the a^(2) value
  // carried over from the previous corrector.
  pos_out = p.pos +
            dt * (p.vel +
                  dt * (0.5 * p.acc +
                        dt * ((1.0 / 6.0) * p.jerk + dt * (1.0 / 24.0) * p.snap)));
  vel_out = p.vel +
            dt * (p.acc + dt * (0.5 * p.jerk + dt * (1.0 / 6.0) * p.snap));
  (void)dt2;
}

void hermite_predict_cubic(const JParticle& p, double t, Vec3& pos_out,
                           Vec3& vel_out) {
  const double dt = t - p.t0;
  pos_out = p.pos +
            dt * (p.vel + dt * (0.5 * p.acc + dt * (1.0 / 6.0) * p.jerk));
  vel_out = p.vel + dt * (p.acc + dt * 0.5 * p.jerk);
}

HermiteDerivatives hermite_interpolate(const Force& f0, const Force& f1, double dt) {
  G6_REQUIRE(dt > 0.0);
  const double inv_dt = 1.0 / dt;
  const double inv_dt2 = inv_dt * inv_dt;
  const double inv_dt3 = inv_dt2 * inv_dt;
  HermiteDerivatives d;
  d.a2 = (-6.0 * (f0.acc - f1.acc) - dt * (4.0 * f0.jerk + 2.0 * f1.jerk)) * inv_dt2;
  d.a3 = (12.0 * (f0.acc - f1.acc) + 6.0 * dt * (f0.jerk + f1.jerk)) * inv_dt3;
  return d;
}

void hermite_correct(const HermiteDerivatives& d, double dt, Vec3& pos, Vec3& vel) {
  const double dt3 = dt * dt * dt;
  const double dt4 = dt3 * dt;
  const double dt5 = dt4 * dt;
  pos += (dt4 / 24.0) * d.a2 + (dt5 / 120.0) * d.a3;
  vel += (dt3 / 6.0) * d.a2 + (dt4 / 24.0) * d.a3;
}

double aarseth_timestep(const Force& f1, const Vec3& a2_t1, const Vec3& a3,
                        double eta) {
  const double a = norm(f1.acc);
  const double j = norm(f1.jerk);
  const double s = norm(a2_t1);
  const double c = norm(a3);
  const double num = a * s + j * j;
  const double den = j * c + s * s;
  if (den == 0.0 || num == 0.0) {
    // Degenerate derivative history (e.g. a two-body start); fall back to
    // the simple |a|/|j| estimate.
    if (j > 0.0 && a > 0.0) return eta * a / j;
    return 1.0;
  }
  return std::sqrt(eta * num / den);
}

double initial_timestep(const Force& f, double eta_s) {
  const double a = norm(f.acc);
  const double j = norm(f.jerk);
  if (a == 0.0) return 1.0;
  if (j == 0.0) return eta_s;
  return eta_s * a / j;
}

double quantize_timestep(double dt_req, double dt_min, double dt_max) {
  G6_REQUIRE(dt_min > 0.0 && dt_max >= dt_min);
  if (dt_req <= dt_min) return dt_min;
  // Largest 2^k <= dt_req.
  const double dt = std::exp2(std::floor(std::log2(dt_req)));
  return std::min(dt, dt_max);
}

double commensurate_timestep(double t, double dt_new, double dt_min) {
  double dt = dt_new;
  while (dt > dt_min) {
    const double q = t / dt;
    if (q == std::floor(q)) break;  // exact for power-of-two grids
    dt *= 0.5;
  }
  return dt;
}

}  // namespace g6
