#include "hermite/ahmad_cohen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hermite/direct_engine.hpp"
#include "hermite/scheme.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6 {

namespace {
/// Accept a neighbor list whose size lies in a sane band around the
/// target (too many neighbors makes irregular sums expensive).
bool list_acceptable(std::size_t count, std::size_t target, std::size_t n_total,
                     bool overflow) {
  if (overflow) return false;
  const std::size_t upper = std::max<std::size_t>(4 * target, 8);
  const std::size_t lower = n_total - 1 <= target ? n_total - 1 : 1;
  return count >= lower && count <= upper;
}
}  // namespace

AhmadCohenIntegrator::AhmadCohenIntegrator(const ParticleSet& initial,
                                           ForceEngine& engine,
                                           AhmadCohenConfig config)
    : engine_(engine), cfg_(config) {
  G6_REQUIRE(initial.size() >= 2);
  G6_REQUIRE_MSG(engine.supports_neighbors(),
                 "Ahmad-Cohen scheme needs an engine with neighbor lists");
  G6_REQUIRE(cfg_.eta_irr > 0.0 && cfg_.eta_reg > 0.0 && cfg_.eta_s > 0.0);
  G6_REQUIRE(cfg_.dt_min > 0.0 && cfg_.dt_max >= cfg_.dt_min);
  G6_REQUIRE(cfg_.neighbor_target >= 1);
  initialize(initial);
}

Force AhmadCohenIntegrator::irregular_force(std::size_t i, const Vec3& pos,
                                            const Vec3& vel, double t,
                                            std::span<const std::uint32_t> list) {
  const double eps2 = engine_.softening() * engine_.softening();
  (void)i;
  Force f;
  for (std::uint32_t j : list) {
    G6_ASSERT(j != i);
    Vec3 xj, vj;
    hermite_predict(particles_[j], t, xj, vj);
    accumulate_pairwise(pos, vel, xj, vj, particles_[j].mass, eps2, f);
  }
  irregular_interactions_ += list.size();
  return f;
}

Force AhmadCohenIntegrator::predicted_regular(std::size_t i, double t) const {
  const double dt = t - t_reg_[i];
  Force f;
  f.acc = f_reg_[i].acc + dt * (f_reg_[i].jerk + 0.5 * dt * a2_reg_[i]);
  f.jerk = f_reg_[i].jerk + dt * a2_reg_[i];
  f.pot = f_reg_[i].pot;
  return f;
}

void AhmadCohenIntegrator::initialize(const ParticleSet& initial) {
  const std::size_t n = initial.size();
  particles_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    particles_[i].mass = initial[i].mass;
    particles_[i].pos = initial[i].pos;
    particles_[i].vel = initial[i].vel;
    particles_[i].t0 = 0.0;
  }
  engine_.load_particles(particles_);

  // Initial neighbor radius from the mean radius and the target count.
  Vec3 com;
  for (const auto& p : particles_) com += p.mass * p.pos;
  double rbar = 0.0;
  for (const auto& p : particles_) rbar += norm(p.pos - com);
  rbar = std::max(1e-6, rbar / static_cast<double>(n));
  const double h0 =
      2.0 * rbar *
      std::cbrt(static_cast<double>(cfg_.neighbor_target) / static_cast<double>(n));
  h2_.assign(n, h0 * h0);

  // Full forces + neighbor lists, adapting radii until acceptable.
  std::vector<PredictedState> pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    pred[i] = {particles_[i].pos, particles_[i].vel, particles_[i].mass,
               static_cast<std::uint32_t>(i)};
  }
  std::vector<Force> f_tot(n);
  std::vector<NeighborResult> nb(n);
  for (int round = 0; round < 12; ++round) {
    engine_.compute_forces_neighbors(0.0, pred, h2_, f_tot, nb);
    regular_interactions_ += n * (n - 1);
    bool all_ok = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (list_acceptable(nb[i].indices.size(), cfg_.neighbor_target, n,
                          nb[i].overflow)) {
        continue;
      }
      all_ok = false;
      if (nb[i].overflow || nb[i].indices.size() > 4 * cfg_.neighbor_target) {
        h2_[i] *= 0.5;
      } else {
        h2_[i] *= 2.0;
      }
    }
    if (all_ok) break;
  }

  neighbors_.resize(n);
  f_irr_.resize(n);
  f_reg_.resize(n);
  a2_reg_.assign(n, Vec3{});
  dt_irr_.resize(n);
  dt_reg_.resize(n);
  t_reg_.assign(n, 0.0);

  for (std::size_t i = 0; i < n; ++i) {
    neighbors_[i] = std::move(nb[i].indices);
    const Force fi =
        irregular_force(i, particles_[i].pos, particles_[i].vel, 0.0, neighbors_[i]);
    f_irr_[i] = fi;
    f_reg_[i].acc = f_tot[i].acc - fi.acc;
    f_reg_[i].jerk = f_tot[i].jerk - fi.jerk;
    f_reg_[i].pot = f_tot[i].pot - fi.pot;

    particles_[i].acc = f_tot[i].acc;
    particles_[i].jerk = f_tot[i].jerk;
    particles_[i].snap = {};

    const double dt_i = neighbors_[i].empty()
                            ? initial_timestep(f_tot[i], cfg_.eta_s)
                            : initial_timestep(fi, cfg_.eta_s);
    dt_irr_[i] = quantize_timestep(dt_i, cfg_.dt_min, cfg_.dt_max);
    const double dt_r = initial_timestep(f_reg_[i], cfg_.eta_s);
    dt_reg_[i] =
        std::max(dt_irr_[i], quantize_timestep(dt_r, cfg_.dt_min, cfg_.dt_max));
    dt_irr_[i] = std::min(dt_irr_[i], dt_reg_[i]);
    engine_.update_particle(i, particles_[i]);
  }
  trace_.n_particles = n;
}

double AhmadCohenIntegrator::next_block_time() const {
  double t_next = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    t_next = std::min(t_next, particles_[i].t0 + dt_irr_[i]);
  }
  return t_next;
}

std::size_t AhmadCohenIntegrator::step() {
  obs::Eq10Stepper eq(eq10_);  // opens attributing to kHost
  G6_PHASE("hermite.ac.blockstep");
  const double t = next_block_time();
  const std::size_t n = particles_.size();

  block_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (particles_[i].t0 + dt_irr_[i] == t) block_.push_back(i);
  }
  G6_ASSERT(!block_.empty());

  struct Work {
    std::size_t i = 0;
    Vec3 pos, vel;          // corrected (irregular part applied)
    Force f_irr_new;        // over the OLD list, at t
    HermiteDerivatives d;   // irregular interpolation
    double dt = 0.0;
    bool due_regular = false;
  };
  std::vector<Work> work;
  work.reserve(block_.size());

  // --- phase 1: irregular step for every block member -------------------
  {
    G6_PHASE("hermite.ac.irregular");
    for (std::size_t i : block_) {
      Work w;
      w.i = i;
      w.dt = t - particles_[i].t0;
      w.due_regular = (t == t_reg_[i] + dt_reg_[i]);

      Vec3 xp, vp;
      hermite_predict_cubic(particles_[i], t, xp, vp);
      w.f_irr_new = irregular_force(i, xp, vp, t, neighbors_[i]);
      w.d = hermite_interpolate(f_irr_[i], w.f_irr_new, w.dt);
      w.pos = xp;
      w.vel = vp;
      hermite_correct(w.d, w.dt, w.pos, w.vel);
      work.push_back(w);
    }
  }

  // --- phase 2: regular refresh for the due subset (batched) ------------
  std::vector<std::size_t> due;
  for (std::size_t k = 0; k < work.size(); ++k) {
    if (work[k].due_regular) due.push_back(k);
  }
  if (!due.empty()) {
    G6_PHASE("hermite.ac.regular-refresh");
    std::vector<PredictedState> pred(due.size());
    std::vector<double> radii(due.size());
    std::vector<Force> f_tot(due.size());
    std::vector<NeighborResult> nb(due.size());
    for (int attempt = 0; attempt < 8; ++attempt) {
      for (std::size_t k = 0; k < due.size(); ++k) {
        const Work& w = work[due[k]];
        pred[k] = {w.pos, w.vel, particles_[w.i].mass,
                   static_cast<std::uint32_t>(w.i)};
        radii[k] = h2_[w.i];
      }
      eq.phase(obs::Eq10Stepper::Phase::kGrape);
      engine_.compute_forces_neighbors(t, pred, radii, f_tot, nb);
      eq.phase(obs::Eq10Stepper::Phase::kHost);
      regular_interactions_ += due.size() * (n - 1);
      bool overflowed = false;
      for (std::size_t k = 0; k < due.size(); ++k) {
        if (nb[k].overflow) {
          h2_[work[due[k]].i] *= 0.5;  // hardware FIFO overflow: shrink h
          overflowed = true;
        }
      }
      if (!overflowed) break;
    }

    for (std::size_t k = 0; k < due.size(); ++k) {
      Work& w = work[due[k]];
      const std::size_t i = w.i;
      const double dtr = t - t_reg_[i];

      // Regular force at t with the OLD list split: differencing against
      // f_reg_ (also old-list) keeps the interpolated derivatives smooth.
      // Re-splitting with the new list here would inject the force of the
      // particles that crossed the h boundary as a fake O(1/dt^2) second
      // derivative and collapse the timesteps.
      Force f_reg_oldsplit;
      f_reg_oldsplit.acc = f_tot[k].acc - w.f_irr_new.acc;
      f_reg_oldsplit.jerk = f_tot[k].jerk - w.f_irr_new.jerk;
      f_reg_oldsplit.pot = f_tot[k].pot - w.f_irr_new.pot;

      // Regular corrector over the regular span (old-list pair).
      const HermiteDerivatives dr =
          hermite_interpolate(f_reg_[i], f_reg_oldsplit, dtr);
      hermite_correct(dr, dtr, w.pos, w.vel);
      a2_reg_[i] = dr.a2 + dtr * dr.a3;

      // Now adopt the new list and re-split the same total force for the
      // state carried forward.
      std::vector<std::uint32_t> new_list = std::move(nb[k].indices);
      const Force f_irr_split = irregular_force(i, w.pos, w.vel, t, new_list);
      Force f_reg_new;
      f_reg_new.acc = f_tot[k].acc - f_irr_split.acc;
      f_reg_new.jerk = f_tot[k].jerk - f_irr_split.jerk;
      f_reg_new.pot = f_tot[k].pot - f_irr_split.pot;

      f_reg_[i] = f_reg_new;
      t_reg_[i] = t;
      neighbors_[i] = std::move(new_list);
      w.f_irr_new = f_irr_split;  // future irregular pairs use the new list

      // Adapt the neighbor radius toward the target count (rate-limited).
      const double count = std::max<double>(1.0, static_cast<double>(neighbors_[i].size()));
      double factor = std::cbrt(static_cast<double>(cfg_.neighbor_target) / count);
      factor = std::clamp(factor, 1.0 / cfg_.radius_adjust_limit,
                          cfg_.radius_adjust_limit);
      h2_[i] *= factor * factor;

      // New regular timestep from the (smooth, old-split) derivatives.
      double dtr_req =
          aarseth_timestep(f_reg_oldsplit, a2_reg_[i], dr.a3, cfg_.eta_reg);
      dtr_req = std::min(dtr_req, 2.0 * dtr);
      double dt_reg_new = quantize_timestep(dtr_req, cfg_.dt_min, cfg_.dt_max);
      dt_reg_new = commensurate_timestep(t, dt_reg_new, cfg_.dt_min);
      dt_reg_[i] = dt_reg_new;
      ++regular_steps_;
    }
  }

  // --- phase 3: finalize every block member ------------------------------
  G6_PHASE("hermite.ac.finalize");
  for (Work& w : work) {
    const std::size_t i = w.i;
    const Vec3 a2_irr_t1 = w.d.a2 + w.dt * w.d.a3;

    // New irregular timestep.
    double dt_req;
    if (neighbors_[i].empty()) {
      dt_req = dt_reg_[i];
    } else {
      dt_req = aarseth_timestep(w.f_irr_new, a2_irr_t1, w.d.a3, cfg_.eta_irr);
      dt_req = std::min(dt_req, 2.0 * w.dt);
    }
    // Never overshoot the next regular refresh.
    const double remaining = t_reg_[i] + dt_reg_[i] - t;
    G6_ASSERT(remaining > 0.0);
    double dt_new =
        quantize_timestep(std::min(dt_req, remaining), cfg_.dt_min, cfg_.dt_max);
    dt_new = commensurate_timestep(t, dt_new, cfg_.dt_min);
    dt_irr_[i] = dt_new;

    // Total derivatives for the predictor.
    const Force f_reg_p = w.due_regular ? f_reg_[i] : predicted_regular(i, t);
    JParticle& p = particles_[i];
    p.pos = w.pos;
    p.vel = w.vel;
    p.acc = w.f_irr_new.acc + f_reg_p.acc;
    p.jerk = w.f_irr_new.jerk + f_reg_p.jerk;
    p.snap = a2_irr_t1 + a2_reg_[i];
    p.t0 = t;
    f_irr_[i] = w.f_irr_new;
    ++irregular_steps_;
  }

  eq.phase(obs::Eq10Stepper::Phase::kDma);
  {
    // j-particle send, batched after the correctors (the engine state is
    // not read during finalization, so ordering is unchanged).
    G6_PHASE("hermite.ac.j-send");
    for (const Work& w : work) engine_.update_particle(w.i, particles_[w.i]);
  }
  eq.phase(obs::Eq10Stepper::Phase::kHost);
  eq10_.add_steps(block_.size());

  time_ = t;
  ++blocksteps_;
  if (cfg_.record_trace) {
    trace_.records.push_back({t, static_cast<std::uint32_t>(block_.size())});
    trace_.t_end = t;
  }
  return block_.size();
}

void AhmadCohenIntegrator::evolve(double t_end) {
  G6_REQUIRE(t_end >= time_);
  while (next_block_time() <= t_end) step();
  trace_.t_end = std::max(trace_.t_end, time_);
}

ParticleSet AhmadCohenIntegrator::state_at_current_time() const {
  ParticleSet out;
  out.reserve(particles_.size());
  for (const auto& p : particles_) {
    Body b;
    b.mass = p.mass;
    hermite_predict(p, time_, b.pos, b.vel);
    out.add(b);
  }
  return out;
}

double AhmadCohenIntegrator::mean_neighbor_count() const {
  double sum = 0.0;
  for (const auto& list : neighbors_) sum += static_cast<double>(list.size());
  return sum / static_cast<double>(neighbors_.size());
}

}  // namespace g6
