#include "parallel/alternatives.hpp"

#include "net/collectives.hpp"
#include "util/check.hpp"

namespace g6 {

double copy_algorithm_comm_time(std::size_t hosts, std::size_t n_block,
                                std::size_t record_bytes, const NicModel& nic) {
  G6_REQUIRE(hosts >= 1);
  if (hosts == 1) return 0.0;
  // Recursive-doubling all-gather of n_block/hosts records per host.
  const std::size_t share = (n_block + hosts - 1) / hosts;
  return butterfly_allgather_time(hosts, share * record_bytes, nic);
}

double ring_algorithm_comm_time(std::size_t hosts, std::size_t n_block,
                                std::size_t record_bytes, const NicModel& nic) {
  G6_REQUIRE(hosts >= 1);
  if (hosts == 1) return 0.0;
  // Each of the (hosts-1) shifts moves the host's share of the block; the
  // partial forces ride along with the particles.
  const std::size_t share = (n_block + hosts - 1) / hosts;
  return static_cast<double>(hosts - 1) * nic.message_time(share * record_bytes);
}

double grid_algorithm_comm_time(std::size_t grid_side, std::size_t n_block,
                                std::size_t record_bytes, const NicModel& nic) {
  G6_REQUIRE(grid_side >= 1);
  if (grid_side == 1) return 0.0;
  // Per blockstep, three pipelined phases — column reduction of partial
  // forces, row broadcast and column broadcast of the updated subset —
  // each moving n_block/r records end to end (volume at full bandwidth,
  // latency paid once per tree stage). This is the O(N/r) communication
  // of Makino 2002 [9].
  const std::size_t share = (n_block + grid_side - 1) / grid_side;
  const double volume =
      static_cast<double>(share * record_bytes) / nic.bandwidth_Bps;
  const double latency =
      static_cast<double>(butterfly_stages(grid_side)) * nic.one_way_latency();
  return 3.0 * (latency + volume);
}

}  // namespace g6
