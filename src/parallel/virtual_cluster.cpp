#include "parallel/virtual_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/thread_pool.hpp"
#include "fault/injector.hpp"
#include "hermite/scheme.hpp"
#include "net/collectives.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6 {

VirtualCluster::VirtualCluster(const ParticleSet& initial, VirtualClusterConfig cfg)
    : cfg_(std::move(cfg)), model_(cfg_.system) {
  G6_REQUIRE(initial.size() >= 2);
  const std::size_t hosts = cfg_.system.hosts();
  G6_REQUIRE(hosts >= 1);
  engines_.reserve(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    engines_.push_back(std::make_unique<GrapeForceEngine>(
        cfg_.system.machine, cfg_.formats, cfg_.eps, cfg_.system.dma,
        cfg_.system.packets));
  }
  clocks_.resize(hosts);
  initialize(initial);
}

void VirtualCluster::initialize(const ParticleSet& initial) {
  const std::size_t n = initial.size();
  particles_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    particles_[i].mass = initial[i].mass;
    particles_[i].pos = initial[i].pos;
    particles_[i].vel = initial[i].vel;
    particles_[i].t0 = 0.0;
  }
  dt_.assign(n, cfg_.hermite.dt_max);
  last_force_.resize(n);
  for (auto& e : engines_) e->load_particles(particles_);

  // Initial forces, partitioned by ownership so the per-particle block
  // exponent history is identical for every cluster size. One pool task
  // per simulated host (each owns its engine and a disjoint particle
  // subset, so tasks share nothing writable).
  const std::size_t hosts = engines_.size();
  {
    exec::TaskGroup group;
    for (std::size_t h = 0; h < hosts; ++h) {
      group.run([this, h, n, hosts] {
        std::vector<PredictedState> pred;
        std::vector<std::size_t> mine;
        for (std::size_t i = h; i < n; i += hosts) {
          mine.push_back(i);
          pred.push_back({particles_[i].pos, particles_[i].vel,
                          particles_[i].mass, static_cast<std::uint32_t>(i)});
        }
        if (mine.empty()) return;
        std::vector<Force> force(mine.size());
        engines_[h]->compute_forces(0.0, pred, force);
        for (std::size_t k = 0; k < mine.size(); ++k) {
          const std::size_t i = mine[k];
          particles_[i].acc = force[k].acc;
          particles_[i].jerk = force[k].jerk;
          particles_[i].snap = {};
          last_force_[i] = force[k];
          dt_[i] =
              quantize_timestep(initial_timestep(force[k], cfg_.hermite.eta_s),
                                cfg_.hermite.dt_min, cfg_.hermite.dt_max);
        }
      });
    }
    group.wait();
  }
  // Broadcast, parallel over destination hosts (each task touches one
  // engine only; the particle data is read-only here).
  {
    exec::TaskGroup group;
    for (std::size_t h = 0; h < hosts; ++h) {
      group.run([this, h, n] {
        for (std::size_t i = 0; i < n; ++i) {
          engines_[h]->update_particle(i, particles_[i]);
        }
      });
    }
    group.wait();
  }
  trace_.n_particles = n;
}

double VirtualCluster::next_block_time() const {
  double t_next = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    t_next = std::min(t_next, particles_[i].t0 + dt_[i]);
  }
  return t_next;
}

std::size_t VirtualCluster::step() {
  G6_PHASE("cluster.blockstep");
  const double t_next = next_block_time();
  const std::size_t hosts = engines_.size();

  block_.clear();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_[i].t0 + dt_[i] == t_next) block_.push_back(i);
  }
  G6_ASSERT(!block_.empty());

  host_block_.assign(hosts, {});
  for (std::size_t i : block_) host_block_[owner(i)].push_back(i);

  std::vector<double> grape_s(hosts, 0.0);
  std::vector<std::size_t> shares(hosts, 0);

  // One exec-pool task per simulated host, like the real machine: each
  // task predicts, evaluates and corrects only the particles it owns, on
  // its own engine, so the tasks write disjoint slots of particles_ /
  // dt_ / last_force_ / grape_s. The physics is bit-identical to the
  // serial loop (BFP forces, per-host partitioning fixed by ownership).
  {
    exec::TaskGroup group;
    for (std::size_t h = 0; h < hosts; ++h) {
      const auto& mine = host_block_[h];
      shares[h] = mine.size();
      if (mine.empty()) continue;
      group.run([this, h, t_next, &mine, &grape_s] {
        std::vector<PredictedState> pred(mine.size());
        for (std::size_t k = 0; k < mine.size(); ++k) {
          const std::size_t i = mine[k];
          Vec3 xp, vp;
          hermite_predict_cubic(particles_[i], t_next, xp, vp);
          pred[k] = {xp, vp, particles_[i].mass,
                     static_cast<std::uint32_t>(i)};
        }
        std::vector<Force> force(mine.size());
        engines_[h]->compute_forces(t_next, pred, force);
        grape_s[h] = engines_[h]->last_call_grape_seconds();

        for (std::size_t k = 0; k < mine.size(); ++k) {
          const std::size_t i = mine[k];
          JParticle& p = particles_[i];
          const double dt = t_next - p.t0;
          const Force& f1 = force[k];
          const HermiteDerivatives d =
              hermite_interpolate(last_force_[i], f1, dt);
          Vec3 pos = pred[k].pos;
          Vec3 vel = pred[k].vel;
          hermite_correct(d, dt, pos, vel);

          const Vec3 a2_t1 = d.a2 + dt * d.a3;
          double dt_req = aarseth_timestep(f1, a2_t1, d.a3, cfg_.hermite.eta);
          dt_req = std::min(dt_req, 2.0 * dt);
          double dt_new = quantize_timestep(dt_req, cfg_.hermite.dt_min,
                                            cfg_.hermite.dt_max);
          dt_new = commensurate_timestep(t_next, dt_new, cfg_.hermite.dt_min);

          p.pos = pos;
          p.vel = vel;
          p.acc = f1.acc;
          p.jerk = f1.jerk;
          p.snap = a2_t1;
          p.t0 = t_next;
          dt_[i] = dt_new;
          last_force_[i] = f1;
        }
      });
    }
    group.wait();
  }

  // Propagate the updated particles to every host's hardware (column
  // broadcast within a cluster, copy-exchange across clusters), parallel
  // over destination engines — the corrected block is read-only here.
  {
    exec::TaskGroup group;
    for (std::size_t h = 0; h < hosts; ++h) {
      group.run([this, h] {
        for (std::size_t i : block_) {
          engines_[h]->update_particle(i, particles_[i]);
        }
      });
    }
    group.wait();
  }

  charge_blockstep(block_.size(), grape_s, shares);

  time_ = t_next;
  total_steps_ += block_.size();
  ++total_blocksteps_;
  if (cfg_.hermite.record_trace) {
    trace_.records.push_back({t_next, static_cast<std::uint32_t>(block_.size())});
    trace_.t_end = t_next;
  }
  return block_.size();
}

void VirtualCluster::charge_blockstep(std::size_t block_size,
                                      const std::vector<double>& grape_seconds,
                                      const std::vector<std::size_t>& host_share) {
  (void)host_share;
  BlockstepCost mc = model_.blockstep_cost(block_size, particles_.size());
  // Link faults stretch the modelled network time (drops retransmit,
  // spikes multiply latency); the exchanged data is unaffected.
  if (cfg_.injector) mc.net_s = cfg_.injector->perturb_link_time(mc.net_s);
  double grape_max = 0.0;
  for (std::size_t h = 0; h < engines_.size(); ++h) {
    clocks_[h].advance(mc.host_s + mc.dma_s + grape_seconds[h]);
    grape_max = std::max(grape_max, grape_seconds[h]);
  }
  synchronize_clocks(clocks_, mc.net_s);

  cost_.host_s += mc.host_s;
  cost_.dma_s += mc.dma_s;
  cost_.grape_s += grape_max;
  cost_.net_s += mc.net_s;

  // Virtual seconds, so the total is the accounted sum by construction.
  eq10_.add_phases(mc.host_s, mc.dma_s, mc.net_s, grape_max,
                   mc.host_s + mc.dma_s + mc.net_s + grape_max);
  eq10_.add_steps(block_size);

  // One butterfly exchange per blockstep: every host sends one packet per
  // stage (Sec 4.4's synchronization traffic).
  const std::size_t hosts = engines_.size();
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("net.messages").add(hosts * butterfly_stages(hosts));
  reg.gauge("net.modelled_latency_s").add(mc.net_s);
}

void VirtualCluster::evolve(double t_end) {
  G6_REQUIRE(t_end >= time_);
  while (next_block_time() <= t_end) step();
  trace_.t_end = std::max(trace_.t_end, time_);
}

double VirtualCluster::virtual_seconds() const {
  double t = 0.0;
  for (const auto& c : clocks_) t = std::max(t, c.now());
  return t;
}

ParticleSet VirtualCluster::state_at_current_time() const {
  ParticleSet out;
  out.reserve(particles_.size());
  for (const auto& p : particles_) {
    Body b;
    b.mass = p.mass;
    hermite_predict(p, time_, b.pos, b.vel);
    out.add(b);
  }
  return out;
}

}  // namespace g6
