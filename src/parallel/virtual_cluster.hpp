#pragma once
// VirtualCluster: an in-process simulation of the multi-host /
// multi-cluster GRAPE-6 parallel code (Secs 4.2-4.3).
//
// Physics runs for real on emulated hardware; time is virtual.
//
//  * Every host row of the board grid holds a complete copy of the
//    j-particles (the hybrid 2D architecture of Sec 3.2), so each
//    simulated host owns a full GrapeForceEngine.
//  * A blockstep is partitioned over hosts by particle ownership
//    (round-robin); each host computes forces for and corrects only its
//    share, then the updates propagate to every host's hardware (the
//    column broadcast / inter-cluster exchange).
//  * Per-host virtual clocks advance by host work + DMA + pipeline time;
//    barriers equalize them and add the synchronization cost — the
//    bottleneck the paper spends Sec 4.4 on.
//
// Because force reduction uses block floating point, the *dynamics* is
// bit-identical for any number of hosts; only the virtual time changes.
// (Tested in tests/parallel/virtual_cluster_test.cpp.)

#include <memory>
#include <vector>

#include "grape/engine.hpp"
#include "hermite/integrator.hpp"
#include "net/clock.hpp"
#include "obs/eq10.hpp"
#include "perf/machine_model.hpp"

namespace g6 {

struct VirtualClusterConfig {
  /// Topology + cost parameters (hosts_per_cluster, clusters, NIC, ...).
  SystemConfig system = SystemConfig::cluster(4);
  /// Hardware arithmetic; exact() keeps multi-host runs cheap, narrow
  /// formats exercise true hardware precision.
  NumberFormats formats = NumberFormats::exact();
  double eps = 1.0 / 64.0;
  HermiteConfig hermite;
  /// Optional link-fault source: drops and latency spikes perturb the
  /// modelled network time of every blockstep. Link faults touch *time
  /// only* — the dynamics stays bit-identical to a fault-free run
  /// (reliable-delivery model: drops cost retransmits, not data).
  std::shared_ptr<fault::FaultInjector> injector;
};

class VirtualCluster {
 public:
  VirtualCluster(const ParticleSet& initial, VirtualClusterConfig cfg);

  std::size_t total_hosts() const { return engines_.size(); }
  double time() const { return time_; }
  std::size_t size() const { return particles_.size(); }

  /// One blockstep across all hosts; returns the block size.
  std::size_t step();
  void evolve(double t_end);

  /// Virtual wall time: all clocks are equal after each barrier.
  double virtual_seconds() const;
  /// Accumulated per-component virtual time.
  const BlockstepCost& accumulated_cost() const { return cost_; }

  /// The same breakdown in Eq 10 form (virtual seconds, total included);
  /// feeds the shared metrics/report machinery.
  const obs::Eq10Accumulator& eq10() const { return eq10_; }

  unsigned long long total_steps() const { return total_steps_; }
  unsigned long long total_blocksteps() const { return total_blocksteps_; }
  const BlockstepTrace& trace() const { return trace_; }

  ParticleSet state_at_current_time() const;
  const JParticle& particle(std::size_t i) const { return particles_[i]; }

  /// Host that integrates particle i (round-robin ownership).
  std::size_t owner(std::size_t i) const { return i % engines_.size(); }

 private:
  void initialize(const ParticleSet& initial);
  double next_block_time() const;
  void charge_blockstep(std::size_t block_size,
                        const std::vector<double>& grape_seconds,
                        const std::vector<std::size_t>& host_share);

  VirtualClusterConfig cfg_;
  MachineModel model_;

  double time_ = 0.0;
  std::vector<JParticle> particles_;
  std::vector<double> dt_;
  std::vector<Force> last_force_;

  std::vector<std::unique_ptr<GrapeForceEngine>> engines_;
  std::vector<VirtualClock> clocks_;

  unsigned long long total_steps_ = 0;
  unsigned long long total_blocksteps_ = 0;
  BlockstepTrace trace_;
  BlockstepCost cost_;
  obs::Eq10Accumulator eq10_;

  // scratch (host tasks carry their own predict/force banks)
  std::vector<std::size_t> block_;
  std::vector<std::vector<std::size_t>> host_block_;
};

}  // namespace g6
