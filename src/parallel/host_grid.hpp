#pragma once
// The r x r host-grid parallel algorithm of Makino 2002 [9] — the
// software alternative the paper weighs against the GRAPE hardware
// network in Sec 3.2 ("organize processors into a two-dimensional grid
// ... the effective communication bandwidth is increased by a factor r").
//
// Host p_ij holds copies of particle subsets i and j. Per blockstep:
//   1. every host computes PARTIAL forces on the block members of subset
//      i from its j-subset (its GRAPE boards hold only subset j);
//   2. partials are reduced down each column to the diagonal host p_ii —
//      an exact block-floating-point merge, like the hardware tree;
//   3. p_ii runs the corrector for its share and broadcasts the updated
//      particles along its row and column;
//   4. barrier.
//
// Because the reduction is BFP-exact, the dynamics is bit-identical to
// the single-host machine — tested against VirtualCluster.

#include <memory>
#include <vector>

#include "grape/engine.hpp"
#include "hermite/integrator.hpp"
#include "net/clock.hpp"
#include "perf/host_model.hpp"
#include "perf/machine_model.hpp"

namespace g6 {

struct HostGridConfig {
  std::size_t grid_side = 2;  ///< r: the grid has r*r hosts
  MachineConfig machine = MachineConfig::single_host();  ///< per-host boards
  NumberFormats formats = NumberFormats::exact();
  double eps = 1.0 / 64.0;
  HermiteConfig hermite;
  HostModel host = hosts::athlon_xp_1800();
  NicModel nic = nics::ns83820();
  DmaModel dma;
  PacketSizes packets;
};

class HostGridCluster {
 public:
  HostGridCluster(const ParticleSet& initial, HostGridConfig cfg);

  std::size_t grid_side() const { return cfg_.grid_side; }
  std::size_t total_hosts() const { return cfg_.grid_side * cfg_.grid_side; }
  double time() const { return time_; }
  std::size_t size() const { return particles_.size(); }

  std::size_t step();
  void evolve(double t_end);

  double virtual_seconds() const;
  const BlockstepCost& accumulated_cost() const { return cost_; }
  unsigned long long total_steps() const { return total_steps_; }
  unsigned long long total_blocksteps() const { return total_blocksteps_; }

  ParticleSet state_at_current_time() const;
  const JParticle& particle(std::size_t i) const { return particles_[i]; }

  /// Subset (row/column id) of particle i.
  std::size_t subset_of(std::size_t i) const { return i % cfg_.grid_side; }

 private:
  void initialize(const ParticleSet& initial);
  double next_block_time() const;
  /// Partial+merged force computation for one subset's block share, with
  /// shared exponent management and retries. Returns max pipeline seconds.
  double compute_block_forces(double t, std::span<const std::size_t> members,
                              std::vector<Force>& out);

  HostGridConfig cfg_;
  double time_ = 0.0;

  std::vector<JParticle> particles_;
  std::vector<double> dt_;
  std::vector<Force> last_force_;
  std::vector<BlockExponents> exps_;

  /// One engine per grid COLUMN (hosts in a column hold the same
  /// j-subset; emulating one copy per column is enough for both the
  /// physics and the per-host pipeline time).
  std::vector<std::unique_ptr<GrapeForceEngine>> column_engines_;
  std::vector<VirtualClock> clocks_;  ///< one per host (r*r)

  unsigned long long total_steps_ = 0;
  unsigned long long total_blocksteps_ = 0;
  BlockstepCost cost_;

  // scratch
  std::vector<std::size_t> block_;
  std::vector<PredictedState> pred_;
  std::vector<IParticlePacket> packets_buf_;
};

}  // namespace g6
