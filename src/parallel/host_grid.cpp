#include "parallel/host_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exec/thread_pool.hpp"
#include "util/errors.hpp"
#include "hermite/scheme.hpp"
#include "net/collectives.hpp"
#include "util/check.hpp"

namespace g6 {

namespace {
constexpr int kRetryBump = 8;
constexpr int kMaxRetries = 16;

double max_abs(const Vec3& v) {
  return std::max({std::fabs(v.x), std::fabs(v.y), std::fabs(v.z)});
}
}  // namespace

HostGridCluster::HostGridCluster(const ParticleSet& initial, HostGridConfig cfg)
    : cfg_(std::move(cfg)) {
  G6_REQUIRE(initial.size() >= 2);
  G6_REQUIRE(cfg_.grid_side >= 1);
  column_engines_.reserve(cfg_.grid_side);
  for (std::size_t c = 0; c < cfg_.grid_side; ++c) {
    column_engines_.push_back(std::make_unique<GrapeForceEngine>(
        cfg_.machine, cfg_.formats, cfg_.eps, cfg_.dma, cfg_.packets));
  }
  clocks_.resize(total_hosts());
  initialize(initial);
}

void HostGridCluster::initialize(const ParticleSet& initial) {
  const std::size_t n = initial.size();
  particles_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    particles_[i].mass = initial[i].mass;
    particles_[i].pos = initial[i].pos;
    particles_[i].vel = initial[i].vel;
    particles_[i].t0 = 0.0;
  }
  dt_.assign(n, cfg_.hermite.dt_max);
  last_force_.resize(n);
  exps_.assign(n, BlockExponents{});

  // Column c's engine holds subset c; the identity map stamps global ids
  // into the hardware images so the pipeline self-interaction cut works
  // against global i-particle indices.
  for (std::size_t c = 0; c < cfg_.grid_side; ++c) {
    std::vector<JParticle> subset;
    std::vector<std::uint32_t> ids;
    subset.reserve(n / cfg_.grid_side + 1);
    ids.reserve(subset.capacity());
    for (std::size_t i = c; i < n; i += cfg_.grid_side) {
      subset.push_back(particles_[i]);
      ids.push_back(static_cast<std::uint32_t>(i));
    }
    column_engines_[c]->set_global_ids(std::move(ids));
    column_engines_[c]->load_particles(subset);
  }

  // Initial forces on everyone.
  block_.resize(n);
  for (std::size_t i = 0; i < n; ++i) block_[i] = i;
  std::vector<Force> forces(n);
  compute_block_forces(0.0, block_, forces);
  for (std::size_t i = 0; i < n; ++i) {
    particles_[i].acc = forces[i].acc;
    particles_[i].jerk = forces[i].jerk;
    particles_[i].snap = {};
    last_force_[i] = forces[i];
    dt_[i] = quantize_timestep(initial_timestep(forces[i], cfg_.hermite.eta_s),
                               cfg_.hermite.dt_min, cfg_.hermite.dt_max);
    const std::size_t c = subset_of(i);
    column_engines_[c]->update_particle(i / cfg_.grid_side, particles_[i]);
  }
  for (auto& clock : clocks_) clock.reset();
  cost_ = {};
}

double HostGridCluster::next_block_time() const {
  double t_next = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    t_next = std::min(t_next, particles_[i].t0 + dt_[i]);
  }
  return t_next;
}

double HostGridCluster::compute_block_forces(double t,
                                             std::span<const std::size_t> members,
                                             std::vector<Force>& out) {
  out.resize(members.size());
  pred_.resize(members.size());
  packets_buf_.resize(members.size());
  for (std::size_t k = 0; k < members.size(); ++k) {
    const std::size_t i = members[k];
    Vec3 xp, vp;
    hermite_predict_cubic(particles_[i], t, xp, vp);
    pred_[k] = {xp, vp, particles_[i].mass, static_cast<std::uint32_t>(i)};
    packets_buf_[k] = column_engines_[0]->make_packet(pred_[k]);
  }

  double grape_seconds_max = 0.0;
  const std::size_t chunk = cfg_.machine.i_parallelism();
  std::vector<BlockExponents> pass_exps;
  std::vector<HwAccumulators> merged;
  std::vector<std::vector<HwAccumulators>> col_partials(column_engines_.size());
  std::vector<std::uint64_t> col_cycles(column_engines_.size(), 0);

  for (std::size_t begin = 0; begin < members.size(); begin += chunk) {
    const std::size_t end = std::min(members.size(), begin + chunk);
    const std::span<const IParticlePacket> pass{packets_buf_.data() + begin,
                                                end - begin};
    pass_exps.resize(pass.size());
    for (std::size_t k = 0; k < pass.size(); ++k) {
      pass_exps[k] = exps_[members[begin + k]];
    }

    for (int attempt = 0;; ++attempt) {
      // Every column computes partials from its subset, one exec-pool task
      // per column engine (the engines share nothing, like the real
      // hosts). The reduction below is an exact BFP merge in fixed column
      // order, so the schedule never shows in the result.
      {
        exec::TaskGroup group;
        for (std::size_t c = 0; c < column_engines_.size(); ++c) {
          group.run([this, &col_partials, &col_cycles, &pass_exps, pass, t, c] {
            col_cycles[c] = column_engines_[c]->compute_partials(
                t, pass, pass_exps, col_partials[c]);
          });
        }
        group.wait();
      }
      std::uint64_t max_cycles = 0;
      for (std::size_t c = 0; c < column_engines_.size(); ++c) {
        max_cycles = std::max(max_cycles, col_cycles[c]);
        if (c == 0) {
          merged = col_partials[0];
        } else {
          for (std::size_t k = 0; k < pass.size(); ++k) {
            merged[k].merge(col_partials[c][k]);
          }
        }
      }
      grape_seconds_max +=
          static_cast<double>(max_cycles) / cfg_.machine.clock_hz;

      bool overflow = false;
      for (std::size_t k = 0; k < pass.size(); ++k) {
        if (merged[k].overflow()) {
          overflow = true;
          pass_exps[k].acc += kRetryBump;
          pass_exps[k].jerk += kRetryBump;
          pass_exps[k].pot += kRetryBump;
        }
      }
      if (!overflow) break;
      if (attempt >= kMaxRetries) {
        // Recoverable at the integrator level (smaller step, or abandon the
        // run with a typed error) — never an abort.
        throw fault::RetryExhausted("host-grid exponent retry did not converge");
      }
    }

    for (std::size_t k = 0; k < pass.size(); ++k) {
      const Force f = merged[k].decode();
      out[begin + k] = f;
      const std::size_t gid = members[begin + k];
      exps_[gid].acc = choose_block_exponent(max_abs(f.acc));
      exps_[gid].jerk = choose_block_exponent(max_abs(f.jerk));
      exps_[gid].pot = choose_block_exponent(std::fabs(f.pot));
    }
  }
  return grape_seconds_max;
}

std::size_t HostGridCluster::step() {
  const double t_next = next_block_time();
  const std::size_t r = cfg_.grid_side;

  block_.clear();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_[i].t0 + dt_[i] == t_next) block_.push_back(i);
  }
  G6_ASSERT(!block_.empty());

  std::vector<Force> forces;
  const double grape_s = compute_block_forces(t_next, block_, forces);

  // Corrector (runs on the diagonal hosts; physics on the shared copy).
  for (std::size_t k = 0; k < block_.size(); ++k) {
    const std::size_t i = block_[k];
    JParticle& p = particles_[i];
    const double dt = t_next - p.t0;
    const Force& f1 = forces[k];
    const HermiteDerivatives d = hermite_interpolate(last_force_[i], f1, dt);
    Vec3 pos = pred_[k].pos;
    Vec3 vel = pred_[k].vel;
    hermite_correct(d, dt, pos, vel);

    const Vec3 a2_t1 = d.a2 + dt * d.a3;
    double dt_req = aarseth_timestep(f1, a2_t1, d.a3, cfg_.hermite.eta);
    dt_req = std::min(dt_req, 2.0 * dt);
    double dt_new =
        quantize_timestep(dt_req, cfg_.hermite.dt_min, cfg_.hermite.dt_max);
    dt_new = commensurate_timestep(t_next, dt_new, cfg_.hermite.dt_min);

    p.pos = pos;
    p.vel = vel;
    p.acc = f1.acc;
    p.jerk = f1.jerk;
    p.snap = a2_t1;
    p.t0 = t_next;
    dt_[i] = dt_new;
    last_force_[i] = f1;
    column_engines_[subset_of(i)]->update_particle(i / r, p);
  }

  // --- virtual time (bulk-synchronous phases, charged to every host) ----
  const std::size_t share = (block_.size() + r - 1) / r;
  BlockstepCost c;
  c.grape_s = grape_s;
  c.host_s = static_cast<double>(share) *
                 cfg_.host.step_time(static_cast<double>(particles_.size())) +
             cfg_.host.block_overhead_s;
  c.dma_s = cfg_.dma.transfer_time(2 * share * cfg_.packets.j_particle_bytes) +
            cfg_.dma.transfer_time(share * cfg_.packets.i_particle_bytes) +
            cfg_.dma.transfer_time(share * cfg_.packets.result_bytes);
  if (r > 1) {
    const double stages = static_cast<double>(butterfly_stages(r));
    c.net_s = stages * cfg_.nic.message_time(share * cfg_.packets.result_bytes) +
              2.0 * stages * cfg_.nic.message_time(share * cfg_.packets.j_particle_bytes) +
              butterfly_barrier_time(total_hosts(), cfg_.nic);
  }
  for (auto& clock : clocks_) clock.advance(c.host_s + c.dma_s + c.grape_s);
  synchronize_clocks(clocks_, c.net_s);
  cost_ += c;

  time_ = t_next;
  total_steps_ += block_.size();
  ++total_blocksteps_;
  return block_.size();
}

void HostGridCluster::evolve(double t_end) {
  G6_REQUIRE(t_end >= time_);
  while (next_block_time() <= t_end) step();
}

double HostGridCluster::virtual_seconds() const {
  double t = 0.0;
  for (const auto& c : clocks_) t = std::max(t, c.now());
  return t;
}

ParticleSet HostGridCluster::state_at_current_time() const {
  ParticleSet out;
  out.reserve(particles_.size());
  for (const auto& p : particles_) {
    Body b;
    b.mass = p.mass;
    hermite_predict(p, time_, b.pos, b.vel);
    out.add(b);
  }
  return out;
}

}  // namespace g6
