#pragma once
// Communication-cost models for the parallel decompositions the paper
// weighs in Sec 3.2 (following Makino 2002 [9]):
//
//   "copy" — every host keeps the full system; after a blockstep all
//            updated particles are exchanged (all-gather). Communication
//            per host is ~independent of the host count.
//   "ring" — disjoint subsets; the current block circulates around a
//            ring so every host computes partial forces. Also ~constant
//            communication per host.
//   "2D host grid" — r x r hosts, each row/column holding a copy of one
//            N/r subset; per-host communication drops as O(n/r).
//
// GRAPE-6 realizes the 2D idea in hardware (board grid) instead of in
// hosts; the ablation bench bench/ablation_parallel_algorithms.cpp uses
// these models to reproduce that design rationale quantitatively.

#include <cstddef>

#include "net/nic.hpp"

namespace g6 {

/// Per-blockstep, per-host communication time of the "copy" algorithm:
/// all-gather of the n_block updated records.
double copy_algorithm_comm_time(std::size_t hosts, std::size_t n_block,
                                std::size_t record_bytes, const NicModel& nic);

/// Per-blockstep, per-host communication time of the "ring" algorithm:
/// the block circulates in (hosts-1) shifts, then results return.
double ring_algorithm_comm_time(std::size_t hosts, std::size_t n_block,
                                std::size_t record_bytes, const NicModel& nic);

/// Per-blockstep, per-host communication of the r x r host grid [9]:
/// column reduction of partial forces plus row+column broadcast of the
/// updated subset — O(n_block / r) volume per host.
double grid_algorithm_comm_time(std::size_t grid_side, std::size_t n_block,
                                std::size_t record_bytes, const NicModel& nic);

}  // namespace g6
