#include "fault/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "fault/checksum.hpp"
#include "util/errors.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"

namespace g6::fault {

namespace {
constexpr const char* kSchema = "grape6-checkpoint-v1";

void expect_key(std::istream& is, const char* key) {
  std::string tok;
  if (!(is >> tok) || tok != key) {
    throw FaultError(std::string("checkpoint: expected '") + key + "', got '" +
                     tok + "'");
  }
}

std::uint64_t body_digest(std::string_view body) {
  Fnv1a64 h;
  h.fold(body);
  return h.digest();
}

RunCheckpoint parse_body(std::istream& is);

/// Serialize the checkpoint body (everything up to and including "end\n").
void write_body(std::ostream& os, const RunCheckpoint& cp) {
  const HermiteState& s = cp.state;
  const auto flags = os.flags();
  os.precision(17);  // round-trips IEEE binary64 exactly

  os << kSchema << '\n';
  os << "tag " << cp.run_tag << '\n';
  os << "time " << s.time << '\n';
  os << "steps " << s.total_steps << ' ' << s.total_blocksteps << '\n';
  os << "e0 " << cp.e0 << '\n';
  os << "snap " << cp.next_snap << ' ' << cp.snap_id << '\n';
  os << "n " << s.particles.size() << '\n';
  for (std::size_t i = 0; i < s.particles.size(); ++i) {
    const JParticle& p = s.particles[i];
    os << "p " << p.mass << ' ' << p.t0 << ' ' << p.pos.x << ' ' << p.pos.y
       << ' ' << p.pos.z << ' ' << p.vel.x << ' ' << p.vel.y << ' ' << p.vel.z
       << ' ' << p.acc.x << ' ' << p.acc.y << ' ' << p.acc.z << ' ' << p.jerk.x
       << ' ' << p.jerk.y << ' ' << p.jerk.z << ' ' << p.snap.x << ' '
       << p.snap.y << ' ' << p.snap.z << ' ' << s.dt[i] << '\n';
    const Force& f = s.last_force[i];
    os << "f " << f.acc.x << ' ' << f.acc.y << ' ' << f.acc.z << ' ' << f.jerk.x
       << ' ' << f.jerk.y << ' ' << f.jerk.z << ' ' << f.pot << '\n';
  }
  os << "nexp " << cp.exponents.size() << '\n';
  for (const BlockExponents& e : cp.exponents) {
    os << "x " << e.acc << ' ' << e.jerk << ' ' << e.pot << '\n';
  }
  os << "end\n";
  os.flags(flags);
}

}  // namespace

void write_checkpoint(std::ostream& os, const RunCheckpoint& cp) {
  G6_REQUIRE_MSG(cp.run_tag.find('\n') == std::string::npos,
                 "checkpoint run_tag must be a single line");
  const HermiteState& s = cp.state;
  G6_REQUIRE(s.dt.size() == s.particles.size());
  G6_REQUIRE(s.last_force.size() == s.particles.size());
  std::ostringstream body;
  write_body(body, cp);
  const std::string bytes = body.str();
  os << bytes;
  os << "sum " << std::hex << std::setw(16) << std::setfill('0')
     << body_digest(bytes) << std::dec << std::setfill(' ') << '\n';
}

RunCheckpoint read_checkpoint(std::istream& is) {
  // Slurp the whole stream first: the trailer covers every byte of the
  // body, so validation happens before any field is interpreted.
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string content = buf.str();

  const std::size_t marker = content.rfind("end\nsum ");
  if (marker == std::string::npos) {
    throw FaultError(
        "checkpoint: missing checksum trailer (truncated or pre-trailer "
        "format)");
  }
  const std::string bytes = content.substr(0, marker + 4);  // keep "end\n"
  std::istringstream trailer(content.substr(marker + 4));
  std::string tok;
  std::uint64_t stored = 0;
  if (!(trailer >> tok >> std::hex >> stored) || tok != "sum") {
    throw FaultError("checkpoint: malformed checksum trailer");
  }
  const std::uint64_t computed = body_digest(bytes);
  if (stored != computed) {
    std::ostringstream os;
    os << "checkpoint: checksum mismatch (stored " << std::hex << stored
       << ", computed " << computed << ") — file is corrupt";
    throw FaultError(os.str());
  }

  std::istringstream body(bytes);
  return parse_body(body);
}

namespace {

RunCheckpoint parse_body(std::istream& is) {
  std::string schema;
  if (!(is >> schema) || schema != kSchema) {
    throw FaultError("checkpoint: bad schema line (expected " +
                     std::string(kSchema) + ")");
  }
  RunCheckpoint cp;
  expect_key(is, "tag");
  std::getline(is, cp.run_tag);
  if (!cp.run_tag.empty() && cp.run_tag.front() == ' ') cp.run_tag.erase(0, 1);

  HermiteState& s = cp.state;
  expect_key(is, "time");
  is >> s.time;
  expect_key(is, "steps");
  is >> s.total_steps >> s.total_blocksteps;
  expect_key(is, "e0");
  is >> cp.e0;
  expect_key(is, "snap");
  is >> cp.next_snap >> cp.snap_id;
  expect_key(is, "n");
  std::size_t n = 0;
  is >> n;
  if (!is) throw FaultError("checkpoint: truncated header");

  s.particles.resize(n);
  s.dt.resize(n);
  s.last_force.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    expect_key(is, "p");
    JParticle& p = s.particles[i];
    is >> p.mass >> p.t0 >> p.pos.x >> p.pos.y >> p.pos.z >> p.vel.x >>
        p.vel.y >> p.vel.z >> p.acc.x >> p.acc.y >> p.acc.z >> p.jerk.x >>
        p.jerk.y >> p.jerk.z >> p.snap.x >> p.snap.y >> p.snap.z >> s.dt[i];
    expect_key(is, "f");
    Force& f = s.last_force[i];
    is >> f.acc.x >> f.acc.y >> f.acc.z >> f.jerk.x >> f.jerk.y >> f.jerk.z >>
        f.pot;
    if (!is) {
      std::ostringstream os;
      os << "checkpoint: truncated particle record " << i;
      throw FaultError(os.str());
    }
  }
  expect_key(is, "nexp");
  std::size_t m = 0;
  is >> m;
  cp.exponents.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    expect_key(is, "x");
    is >> cp.exponents[i].acc >> cp.exponents[i].jerk >> cp.exponents[i].pot;
  }
  if (!is) throw FaultError("checkpoint: truncated exponent table");
  expect_key(is, "end");
  return cp;
}

}  // namespace

void save_checkpoint(const std::string& path, const RunCheckpoint& cp) {
  // Durable (not just atomic): recovery depends on this file existing
  // with exactly the content append()ed to the journal before the crash.
  write_file_atomic_durable(
      path, [&cp](std::ostream& os) { write_checkpoint(os, cp); });
}

void save_checkpoint_rotating(const std::string& path,
                              const RunCheckpoint& cp) {
  // Best-effort rotation: if `path` does not exist yet the rename simply
  // fails and there is no previous generation to preserve.
  std::rename(path.c_str(), (path + ".prev").c_str());
  save_checkpoint(path, cp);
}

RunCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw FaultError("checkpoint: cannot open " + path);
  try {
    return read_checkpoint(is);
  } catch (const FaultError&) {
    throw;
  } catch (const std::exception& e) {
    throw FaultError("checkpoint: parse error in " + path + ": " + e.what());
  }
}

RunCheckpoint load_checkpoint_resilient(const std::string& path,
                                        bool* used_prev) {
  if (used_prev != nullptr) *used_prev = false;
  std::string primary_error;
  try {
    return load_checkpoint(path);
  } catch (const FaultError& e) {
    primary_error = e.what();
  }
  try {
    RunCheckpoint cp = load_checkpoint(path + ".prev");
    if (used_prev != nullptr) *used_prev = true;
    return cp;
  } catch (const FaultError& e) {
    throw FaultError("checkpoint: no valid generation at " + path +
                     " (primary: " + primary_error +
                     "; fallback: " + e.what() + ")");
  }
}

}  // namespace g6::fault
