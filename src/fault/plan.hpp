#pragma once
// FaultPlan: the declarative description of what should go wrong, and
// DetectionConfig: how hard the host works to notice (docs/RELIABILITY.md).
//
// A plan is pure data — rates, schedules, a seed — so a run's fault
// behaviour is fully reproducible: the same plan (same seed) against the
// same workload produces the identical fault sequence. Plans come from
// three places, in priority order: an explicit JSON file
// (`--fault-plan=`), inline CLI knobs (`--fault-rate=`, `--fault-seed=`),
// or the `G6_FAULT_PLAN` environment variable (path to a JSON file) so
// chaos CI can inject faults into tools without touching their flags.

#include <cstdint>
#include <string>
#include <vector>

namespace g6::obs {
class JsonValue;
}

namespace g6::fault {

/// A scheduled permanent failure: at simulation time `time`, the given
/// chip (or a whole module / board worth of chips) stops producing
/// correct results until detected and disabled.
struct HardFailure {
  double time = 0.0;
  int board = 0;
  int module = -1;  ///< -1: whole board; else module within board
  int chip = -1;    ///< -1: whole module/board; else chip within module
};

/// Everything the injector needs to produce a deterministic fault stream.
/// Rates are per-opportunity probabilities (per j-word written, per
/// i-packet sent, per pipeline pass, per link message).
struct FaultPlan {
  std::uint64_t seed = 0x6701;  ///< fault stream seed (independent of ICs)

  double jmem_flip_rate = 0.0;    ///< P[bit flip] per j-memory word write
  double ipacket_rate = 0.0;      ///< P[corruption] per i-particle packet
  double compute_rate = 0.0;      ///< P[glitched accumulator] per chip pass
  std::vector<int> stuck_chips;   ///< chips (flat id) with stuck outputs
  std::vector<HardFailure> hard_failures;  ///< scheduled permanent deaths

  double link_drop_rate = 0.0;   ///< P[message dropped] per network hop
  double link_spike_rate = 0.0;  ///< P[latency spike] per network hop
  double link_spike_factor = 10.0;     ///< spike multiplies hop latency
  double retransmit_timeout_s = 1e-4;  ///< charged per dropped message

  /// True when any injection is configured (the engine skips all fault
  /// bookkeeping for empty plans, keeping the fault-free path identical
  /// to the pre-fault code).
  bool any() const;

  /// Uniform transient rate across jmem/ipacket/compute channels.
  static FaultPlan uniform_transients(double rate, std::uint64_t seed);

  /// Parse from a JSON object; unknown keys are rejected so plan typos
  /// fail loudly. Throws g6::fault::FaultError on malformed plans.
  static FaultPlan from_json(const obs::JsonValue& v);
  /// Load and parse a JSON plan file; throws on I/O or parse failure.
  static FaultPlan from_file(const std::string& path);
  /// Plan from the G6_FAULT_PLAN env var (a JSON file path); empty plan
  /// when unset.
  static FaultPlan from_env();

  /// One-line human summary for run banners and logs.
  std::string describe() const;
};

/// Detection/recovery policy knobs. Defaults mirror the paper's operating
/// practice: self-test at startup, periodic re-test, checksums on; voting
/// (duplicate passes) off because it halves throughput.
struct DetectionConfig {
  bool packet_checksums = true;  ///< verify i-packet digests per pass
  bool scrub_j_memory = true;    ///< verify j-memory words before use
  int vote_passes = 1;      ///< >1: duplicate passes + compare (voting)
  int selftest_interval = 0;     ///< run self-test every N blocksteps (0: off)
  int dead_threshold = 2;   ///< consecutive self-test failures => chip dead
  int max_retries = 8;      ///< bounded retry for transients
  double backoff_base_s = 50e-6;  ///< virtual backoff, doubles per retry
  int selftest_j = 12;      ///< j-particles per self-test vector set
  int selftest_i = 8;       ///< i-particles per self-test vector set
  double selftest_rel_tol = 1e-2;  ///< pipeline-vs-double tolerance
};

}  // namespace g6::fault
