#pragma once
// FaultInjector: the deterministic fault stream (docs/RELIABILITY.md).
//
// One injector instance owns one g6::Rng seeded from the FaultPlan, so a
// given (plan, workload) pair produces the identical sequence of faults
// on every run — chaos tests are reproducible and a failure seed can be
// replayed under a debugger. All injection sites consume decisions from
// the same stream in a fixed order; the injector is not thread-safe and
// must be driven by one engine at a time.
//
// Injection points, bottom of the hierarchy upward:
//   * j-memory words     — single-bit upsets in chip-local particle memory
//   * i-particle packets — single-bit corruption of the broadcast DMA
//   * pipeline passes    — transient accumulator glitches, stuck outputs,
//                          scheduled hard chip/module/board death
//   * network links      — message drops + latency spikes (via the
//                          net/collectives LinkPerturbation interface)
//
// The injector also keeps the ground-truth injected counts (exported as
// fault.injected.* metrics) that the chaos soak test reconciles against
// the engine's fault.detected.* counters.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "hw/formats.hpp"
#include "net/collectives.hpp"
#include "util/rng.hpp"

namespace g6 {
struct HwAccumulators;
class JStore;
namespace obs {
class Counter;
}
}  // namespace g6

namespace g6::fault {

/// One injected or activated fault, for postmortems and run logs. The log
/// is bounded (kMaxEvents); overflow is counted, not stored.
struct FaultEvent {
  double time = 0.0;
  std::string what;
};

class FaultInjector final : public LinkPerturbation {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Ground-truth injected-fault counts (mirrored to fault.injected.*).
  struct Counts {
    std::uint64_t jmem_flips = 0;
    std::uint64_t ipacket_corruptions = 0;
    std::uint64_t compute_glitches = 0;
    std::uint64_t stuck_passes = 0;
    std::uint64_t hard_activations = 0;  ///< chips turned permanently bad
    std::uint64_t link_drops = 0;
    std::uint64_t link_spikes = 0;
  };
  const Counts& counts() const { return counts_; }

  // --- chip health (flat id: board * chips_per_board + chip) ------------
  bool chip_stuck(int chip) const;
  bool chip_hard_failed(int chip) const;
  /// Record a permanent failure (scheduled activation or engine decision
  /// after repeated self-test failure); idempotent.
  void mark_hard_failed(double t, int chip);
  /// Activate scheduled hard failures with failure time <= t. Returns the
  /// flat chip ids that newly turned bad given the machine geometry
  /// (module = -1 kills a board, chip = -1 kills a module).
  std::vector<int> activate_hard_failures(double t, std::size_t chips_per_module,
                                          std::size_t chips_per_board);

  // --- injection points -------------------------------------------------
  /// Flip at most one random bit per word, each with probability
  /// jmem_flip_rate. Words round-trip through the JStore compatibility
  /// plane (get/corrupt/set), consuming RNG decisions in slot order —
  /// the same stream a contiguous word array produced. Returns the
  /// number of words corrupted.
  std::uint64_t corrupt_j_memory(double t, int chip, JStore& memory);
  /// Corrupt each packet with probability ipacket_rate (one bit flip in a
  /// random field). Returns the number of packets corrupted.
  std::uint64_t corrupt_i_packets(double t, std::span<IParticlePacket> packets);
  /// End-of-pass output faults for one chip: stuck/dead chips overwrite
  /// every accumulator with a constant wrong pattern; otherwise a
  /// transient glitch flips accumulator bits with probability
  /// compute_rate per pass.
  void apply_pass_faults(double t, int chip, std::span<HwAccumulators> out);
  /// Transient compute glitches are disabled during self-test so healthy
  /// chips produce reference-exact vectors; permanent faults still apply.
  void set_compute_glitches(bool enabled) { compute_glitches_on_ = enabled; }

  // --- LinkPerturbation (consulted per network hop) ---------------------
  bool drop_message() override;
  double latency_factor() override;
  double retransmit_timeout_s() const override {
    return plan_.retransmit_timeout_s;
  }

  /// Perturb one modelled network interval (VirtualCluster's per-
  /// blockstep net charge): spike multiplier plus drop/retransmit cost.
  double perturb_link_time(double base_s) {
    return perturbed_hop_time(base_s, this);
  }

  const std::vector<FaultEvent>& events() const { return events_; }
  std::uint64_t dropped_events() const { return dropped_events_; }

 private:
  static constexpr std::size_t kMaxEvents = 256;

  void note(double t, std::string what);
  void corrupt_word(StoredJParticle& p);
  void corrupt_packet(IParticlePacket& p);

  FaultPlan plan_;
  Rng rng_;
  Counts counts_;
  bool compute_glitches_on_ = true;
  std::vector<int> hard_failed_;            ///< flat ids, unordered
  std::vector<std::uint8_t> hard_done_;     ///< per plan.hard_failures entry
  std::vector<FaultEvent> events_;
  std::uint64_t dropped_events_ = 0;

  // Cached fault.injected.* instruments (registry-owned).
  obs::Counter& c_jmem_;
  obs::Counter& c_ipacket_;
  obs::Counter& c_compute_;
  obs::Counter& c_stuck_;
  obs::Counter& c_hard_;
  obs::Counter& c_link_drop_;
  obs::Counter& c_link_spike_;
};

}  // namespace g6::fault
