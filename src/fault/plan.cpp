#include "fault/plan.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace g6::fault {

bool FaultPlan::any() const {
  return jmem_flip_rate > 0.0 || ipacket_rate > 0.0 || compute_rate > 0.0 ||
         !stuck_chips.empty() || !hard_failures.empty() ||
         link_drop_rate > 0.0 || link_spike_rate > 0.0;
}

FaultPlan FaultPlan::uniform_transients(double rate, std::uint64_t seed) {
  G6_REQUIRE(rate >= 0.0 && rate <= 1.0);
  FaultPlan plan;
  plan.seed = seed;
  plan.jmem_flip_rate = rate;
  plan.ipacket_rate = rate;
  plan.compute_rate = rate;
  return plan;
}

namespace {

double require_rate(const obs::JsonValue& v, const char* key) {
  if (!v.is_number()) throw FaultError(std::string("fault plan: ") + key + " must be a number");
  const double r = v.as_number();
  if (r < 0.0 || r > 1.0)
    throw FaultError(std::string("fault plan: ") + key + " outside [0, 1]");
  return r;
}

double require_number(const obs::JsonValue& v, const char* key) {
  if (!v.is_number()) throw FaultError(std::string("fault plan: ") + key + " must be a number");
  return v.as_number();
}

int require_int(const obs::JsonValue& v, const char* key) {
  const double d = require_number(v, key);
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d)
    throw FaultError(std::string("fault plan: ") + key + " must be an integer");
  return i;
}

HardFailure parse_hard_failure(const obs::JsonValue& v) {
  if (!v.is_object()) throw FaultError("fault plan: hard_failures entries must be objects");
  HardFailure f;
  bool saw_board = false;
  for (const auto& [key, value] : v.members()) {
    if (key == "time") {
      f.time = require_number(value, "hard_failures.time");
    } else if (key == "board") {
      f.board = require_int(value, "hard_failures.board");
      saw_board = true;
    } else if (key == "module") {
      f.module = require_int(value, "hard_failures.module");
    } else if (key == "chip") {
      f.chip = require_int(value, "hard_failures.chip");
    } else {
      throw FaultError("fault plan: unknown hard_failures key '" + key + "'");
    }
  }
  if (!saw_board) throw FaultError("fault plan: hard_failures entry missing 'board'");
  return f;
}

}  // namespace

FaultPlan FaultPlan::from_json(const obs::JsonValue& v) {
  if (!v.is_object()) throw FaultError("fault plan: top level must be a JSON object");
  FaultPlan plan;
  for (const auto& [key, value] : v.members()) {
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(require_number(value, "seed"));
    } else if (key == "jmem_flip_rate") {
      plan.jmem_flip_rate = require_rate(value, "jmem_flip_rate");
    } else if (key == "ipacket_rate") {
      plan.ipacket_rate = require_rate(value, "ipacket_rate");
    } else if (key == "compute_rate") {
      plan.compute_rate = require_rate(value, "compute_rate");
    } else if (key == "stuck_chips") {
      if (!value.is_array()) throw FaultError("fault plan: stuck_chips must be an array");
      for (const auto& item : value.items())
        plan.stuck_chips.push_back(require_int(item, "stuck_chips[]"));
    } else if (key == "hard_failures") {
      if (!value.is_array()) throw FaultError("fault plan: hard_failures must be an array");
      for (const auto& item : value.items())
        plan.hard_failures.push_back(parse_hard_failure(item));
    } else if (key == "link_drop_rate") {
      plan.link_drop_rate = require_rate(value, "link_drop_rate");
    } else if (key == "link_spike_rate") {
      plan.link_spike_rate = require_rate(value, "link_spike_rate");
    } else if (key == "link_spike_factor") {
      plan.link_spike_factor = require_number(value, "link_spike_factor");
      if (plan.link_spike_factor < 1.0)
        throw FaultError("fault plan: link_spike_factor must be >= 1");
    } else if (key == "retransmit_timeout_s") {
      plan.retransmit_timeout_s = require_number(value, "retransmit_timeout_s");
      if (plan.retransmit_timeout_s < 0.0)
        throw FaultError("fault plan: retransmit_timeout_s must be >= 0");
    } else {
      throw FaultError("fault plan: unknown key '" + key + "'");
    }
  }
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FaultError("fault plan: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw FaultError("fault plan: read error on '" + path + "'");
  try {
    return from_json(obs::JsonValue::parse(buf.str()));
  } catch (const FaultError&) {
    throw;
  } catch (const std::exception& e) {
    throw FaultError("fault plan: parse error in '" + path + "': " + e.what());
  }
}

FaultPlan FaultPlan::from_env() {
  const char* path = std::getenv("G6_FAULT_PLAN");
  if (path == nullptr || *path == '\0') return FaultPlan{};
  return from_file(path);
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "fault plan: seed=" << seed << " jmem=" << jmem_flip_rate
     << " ipacket=" << ipacket_rate << " compute=" << compute_rate
     << " stuck=" << stuck_chips.size() << " hard=" << hard_failures.size()
     << " link_drop=" << link_drop_rate << " link_spike=" << link_spike_rate;
  return os.str();
}

}  // namespace g6::fault
