#include "fault/injector.hpp"

#include <bit>
#include <sstream>

#include "hw/accumulators.hpp"
#include "hw/jstore.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::fault {

namespace {

std::uint64_t flip_bit_u64(std::uint64_t word, std::uint64_t bit) {
  return word ^ (1ULL << bit);
}

double flip_bit(double v, std::uint64_t bit) {
  return std::bit_cast<double>(flip_bit_u64(std::bit_cast<std::uint64_t>(v), bit));
}

std::int64_t flip_bit(std::int64_t v, std::uint64_t bit) {
  return static_cast<std::int64_t>(
      flip_bit_u64(static_cast<std::uint64_t>(v), bit));
}

/// Accumulator components in a fixed order: acc xyz, jerk xyz, pot.
BlockFloatAccumulator& component(HwAccumulators& a, std::uint64_t c) {
  if (c < 3) return a.acc[c];
  if (c < 6) return a.jerk[c - 3];
  return a.pot;
}

/// Constant wrong mantissa for a stuck output register: a function of the
/// register's identity only, so the chip reports the same garbage every
/// pass ("stuck-at" semantics).
std::int64_t stuck_pattern(int chip, std::size_t k, std::uint64_t comp) {
  const std::uint64_t mix =
      0x9e3779b97f4a7c15ULL *
      (static_cast<std::uint64_t>(chip + 1) * 131ULL + k * 7ULL + comp + 1ULL);
  // Keep it inside the accumulator's representable span but far from any
  // physical partial sum.
  return static_cast<std::int64_t>(mix >> 8);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed),
      hard_done_(plan_.hard_failures.size(), 0),
      c_jmem_(obs::MetricsRegistry::global().counter("fault.injected.jmem")),
      c_ipacket_(obs::MetricsRegistry::global().counter("fault.injected.ipacket")),
      c_compute_(obs::MetricsRegistry::global().counter("fault.injected.compute")),
      c_stuck_(obs::MetricsRegistry::global().counter("fault.injected.stuck_passes")),
      c_hard_(obs::MetricsRegistry::global().counter("fault.injected.hard")),
      c_link_drop_(obs::MetricsRegistry::global().counter("fault.injected.link_drop")),
      c_link_spike_(
          obs::MetricsRegistry::global().counter("fault.injected.link_spike")) {
  G6_REQUIRE_MSG(plan_.jmem_flip_rate >= 0.0 && plan_.jmem_flip_rate <= 1.0,
                 "jmem_flip_rate outside [0, 1]");
  G6_REQUIRE(plan_.ipacket_rate >= 0.0 && plan_.ipacket_rate <= 1.0);
  G6_REQUIRE(plan_.compute_rate >= 0.0 && plan_.compute_rate <= 1.0);
  G6_REQUIRE(plan_.link_drop_rate >= 0.0 && plan_.link_drop_rate < 1.0);
  G6_REQUIRE(plan_.link_spike_rate >= 0.0 && plan_.link_spike_rate <= 1.0);
  G6_REQUIRE(plan_.link_spike_factor >= 1.0);
  G6_REQUIRE(plan_.retransmit_timeout_s >= 0.0);
}

void FaultInjector::note(double t, std::string what) {
  if (events_.size() < kMaxEvents) {
    events_.push_back({t, std::move(what)});
  } else {
    ++dropped_events_;
  }
}

bool FaultInjector::chip_stuck(int chip) const {
  for (int c : plan_.stuck_chips) {
    if (c == chip) return true;
  }
  return false;
}

bool FaultInjector::chip_hard_failed(int chip) const {
  for (int c : hard_failed_) {
    if (c == chip) return true;
  }
  return false;
}

void FaultInjector::mark_hard_failed(double t, int chip) {
  if (chip_hard_failed(chip)) return;
  hard_failed_.push_back(chip);
  ++counts_.hard_activations;
  c_hard_.add(1);
  std::ostringstream os;
  os << "hard failure: chip " << chip;
  note(t, os.str());
}

std::vector<int> FaultInjector::activate_hard_failures(
    double t, std::size_t chips_per_module, std::size_t chips_per_board) {
  std::vector<int> newly;
  for (std::size_t i = 0; i < plan_.hard_failures.size(); ++i) {
    if (hard_done_[i] != 0) continue;
    const HardFailure& f = plan_.hard_failures[i];
    if (f.time > t) continue;
    hard_done_[i] = 1;

    const int base = f.board * static_cast<int>(chips_per_board);
    int first = base;
    int count = static_cast<int>(chips_per_board);
    if (f.module >= 0) {
      first = base + f.module * static_cast<int>(chips_per_module);
      count = static_cast<int>(chips_per_module);
      if (f.chip >= 0) {
        first += f.chip;
        count = 1;
      }
    }
    for (int c = first; c < first + count; ++c) {
      if (!chip_hard_failed(c)) {
        mark_hard_failed(t, c);
        newly.push_back(c);
      }
    }
  }
  return newly;
}

void FaultInjector::corrupt_word(StoredJParticle& p) {
  // Fields in a fixed order: index, mass, t0, pos xyz, vel/acc/jerk/snap.
  const std::uint64_t field = rng_.uniform_index(18);
  switch (field) {
    case 0:
      p.index = static_cast<std::uint32_t>(
          flip_bit_u64(p.index, rng_.uniform_index(32)));
      break;
    case 1:
      p.mass = flip_bit(p.mass, rng_.uniform_index(64));
      break;
    case 2:
      p.t0 = flip_bit(p.t0, rng_.uniform_index(64));
      break;
    case 3:
    case 4:
    case 5:
      p.pos[field - 3] = flip_bit(p.pos[field - 3], rng_.uniform_index(64));
      break;
    default: {
      Vec3* vecs[4] = {&p.vel, &p.acc, &p.jerk, &p.snap};
      const std::uint64_t v = (field - 6) / 3;
      const int d = static_cast<int>((field - 6) % 3);
      (*vecs[v])[d] = flip_bit((*vecs[v])[d], rng_.uniform_index(64));
      break;
    }
  }
}

std::uint64_t FaultInjector::corrupt_j_memory(double t, int chip,
                                              JStore& memory) {
  if (plan_.jmem_flip_rate <= 0.0) return 0;
  std::uint64_t flips = 0;
  for (std::size_t w = 0; w < memory.size(); ++w) {
    if (rng_.uniform() >= plan_.jmem_flip_rate) continue;
    // Gather the word from the SoA columns, flip one bit, scatter it
    // back — bit-exact round trip, same RNG draws as the AoS layout.
    StoredJParticle word = memory.get(w);
    corrupt_word(word);
    memory.set(w, word);
    ++flips;
    ++counts_.jmem_flips;
    c_jmem_.add(1);
    std::ostringstream os;
    os << "j-memory bit flip: chip " << chip << " slot " << w;
    note(t, os.str());
  }
  return flips;
}

void FaultInjector::corrupt_packet(IParticlePacket& p) {
  // Fields: index, pos xyz, vel xyz, h2.
  const std::uint64_t field = rng_.uniform_index(8);
  switch (field) {
    case 0:
      p.index = static_cast<std::uint32_t>(
          flip_bit_u64(p.index, rng_.uniform_index(32)));
      break;
    case 1:
    case 2:
    case 3:
      p.pos[field - 1] = flip_bit(p.pos[field - 1], rng_.uniform_index(64));
      break;
    case 4:
    case 5:
    case 6:
      p.vel[static_cast<int>(field) - 4] =
          flip_bit(p.vel[static_cast<int>(field) - 4], rng_.uniform_index(64));
      break;
    default:
      p.h2 = flip_bit(p.h2, rng_.uniform_index(64));
      break;
  }
}

std::uint64_t FaultInjector::corrupt_i_packets(double t,
                                               std::span<IParticlePacket> packets) {
  if (plan_.ipacket_rate <= 0.0) return 0;
  std::uint64_t corrupted = 0;
  for (std::size_t k = 0; k < packets.size(); ++k) {
    if (rng_.uniform() >= plan_.ipacket_rate) continue;
    corrupt_packet(packets[k]);
    ++corrupted;
    ++counts_.ipacket_corruptions;
    c_ipacket_.add(1);
    std::ostringstream os;
    os << "i-packet corruption: slot " << k;
    note(t, os.str());
  }
  return corrupted;
}

void FaultInjector::apply_pass_faults(double t, int chip,
                                      std::span<HwAccumulators> out) {
  if (out.empty()) return;
  if (chip_hard_failed(chip) || chip_stuck(chip)) {
    for (std::size_t k = 0; k < out.size(); ++k) {
      for (std::uint64_t c = 0; c < 7; ++c) {
        component(out[k], c).fault_set_mantissa(stuck_pattern(chip, k, c));
      }
    }
    ++counts_.stuck_passes;
    c_stuck_.add(1);
    return;
  }
  if (!compute_glitches_on_ || plan_.compute_rate <= 0.0) return;
  if (rng_.uniform() >= plan_.compute_rate) return;
  const std::uint64_t k = rng_.uniform_index(out.size());
  const std::uint64_t c = rng_.uniform_index(7);
  // Non-zero mask confined to the low 48 bits: guaranteed to change the
  // mantissa without turning the decoded value astronomically large.
  const std::int64_t mask =
      static_cast<std::int64_t>((rng_.next_u64() & 0xffffffffffffULL) | 1ULL);
  component(out[k], c).fault_xor_mantissa(mask);
  ++counts_.compute_glitches;
  c_compute_.add(1);
  std::ostringstream os;
  os << "compute glitch: chip " << chip << " lane " << k << " component " << c;
  note(t, os.str());
}

bool FaultInjector::drop_message() {
  if (plan_.link_drop_rate <= 0.0) return false;
  if (rng_.uniform() >= plan_.link_drop_rate) return false;
  ++counts_.link_drops;
  c_link_drop_.add(1);
  return true;
}

double FaultInjector::latency_factor() {
  if (plan_.link_spike_rate <= 0.0) return 1.0;
  if (rng_.uniform() >= plan_.link_spike_rate) return 1.0;
  ++counts_.link_spikes;
  c_link_spike_.add(1);
  return plan_.link_spike_factor;
}

}  // namespace g6::fault
