#pragma once
// Run checkpoints: everything needed to resume a Hermite integration
// bit-identically after a crash or hard fault (docs/RELIABILITY.md,
// "Checkpoint format").
//
// A checkpoint is a text file ("grape6-checkpoint-v1") written atomically
// via write-then-rename. Doubles are printed with 17 significant digits,
// which round-trips IEEE binary64 exactly, so a resumed run follows the
// identical trajectory: the state includes not just particle data and
// per-particle timesteps but the engine's block-exponent cache — the BFP
// exponents affect rounding, so without them the first post-resume force
// evaluation could differ in the last bit.
//
// The `run_tag` field is a fingerprint of everything that shapes the
// dynamics (model, n, seed, eta, hardware formats, fault plan). Resume
// refuses a checkpoint whose tag differs from the current configuration
// rather than silently continuing a different run.

#include <string>
#include <vector>

#include "hw/formats.hpp"
#include "hermite/integrator.hpp"

namespace g6::fault {

struct RunCheckpoint {
  std::string run_tag;  ///< configuration fingerprint (no newlines)
  HermiteState state;   ///< full integrator state at a blockstep boundary
  std::vector<BlockExponents> exponents;  ///< engine BFP exponent cache
  double e0 = 0.0;       ///< initial total energy (driver diagnostics)
  double next_snap = 0.0;  ///< driver snapshot schedule position
  int snap_id = 0;         ///< next snapshot sequence number
};

/// Serialize to `os` (text, schema grape6-checkpoint-v1).
void write_checkpoint(std::ostream& os, const RunCheckpoint& cp);

/// Parse a checkpoint; throws FaultError on malformed input.
RunCheckpoint read_checkpoint(std::istream& is);

/// Atomic save (write-then-rename); throws on I/O failure.
void save_checkpoint(const std::string& path, const RunCheckpoint& cp);

/// Load and parse; throws FaultError (missing/corrupt file included).
RunCheckpoint load_checkpoint(const std::string& path);

}  // namespace g6::fault
