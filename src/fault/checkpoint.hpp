#pragma once
// Run checkpoints: everything needed to resume a Hermite integration
// bit-identically after a crash or hard fault (docs/RELIABILITY.md,
// "Checkpoint format").
//
// A checkpoint is a text file ("grape6-checkpoint-v1") written atomically
// and durably (fsync before rename) and terminated by an FNV-1a checksum
// trailer ("sum <16-hex-digits>") over every preceding byte, so a
// truncated, torn, or bit-flipped file is detected at load time instead
// of silently resuming corrupted state. Doubles are printed with 17
// significant digits,
// which round-trips IEEE binary64 exactly, so a resumed run follows the
// identical trajectory: the state includes not just particle data and
// per-particle timesteps but the engine's block-exponent cache — the BFP
// exponents affect rounding, so without them the first post-resume force
// evaluation could differ in the last bit.
//
// The `run_tag` field is a fingerprint of everything that shapes the
// dynamics (model, n, seed, eta, hardware formats, fault plan). Resume
// refuses a checkpoint whose tag differs from the current configuration
// rather than silently continuing a different run.

#include <string>
#include <vector>

#include "hw/formats.hpp"
#include "hermite/integrator.hpp"

namespace g6::fault {

struct RunCheckpoint {
  std::string run_tag;  ///< configuration fingerprint (no newlines)
  HermiteState state;   ///< full integrator state at a blockstep boundary
  std::vector<BlockExponents> exponents;  ///< engine BFP exponent cache
  double e0 = 0.0;       ///< initial total energy (driver diagnostics)
  double next_snap = 0.0;  ///< driver snapshot schedule position
  int snap_id = 0;         ///< next snapshot sequence number
};

/// Serialize to `os` (text, schema grape6-checkpoint-v1), including the
/// checksum trailer.
void write_checkpoint(std::ostream& os, const RunCheckpoint& cp);

/// Parse a checkpoint; throws FaultError on malformed input, a missing
/// trailer (truncation), or a checksum mismatch (bit flip).
RunCheckpoint read_checkpoint(std::istream& is);

/// Atomic durable save (write, fsync, rename); throws on I/O failure.
void save_checkpoint(const std::string& path, const RunCheckpoint& cp);

/// save_checkpoint, but first rotates an existing `path` to `path.prev`
/// so one older valid generation survives a corrupted new write. This is
/// what the serving layer uses for per-job quantum checkpoints.
void save_checkpoint_rotating(const std::string& path,
                              const RunCheckpoint& cp);

/// Load and parse; throws FaultError (missing/corrupt file included).
RunCheckpoint load_checkpoint(const std::string& path);

/// Load `path`; if it is missing or fails validation (truncation, bit
/// flip, parse error), fall back to `path.prev`. Throws FaultError only
/// when no valid generation exists. When `used_prev` is non-null it is
/// set to true iff the fallback generation was the one returned.
RunCheckpoint load_checkpoint_resilient(const std::string& path,
                                        bool* used_prev = nullptr);

}  // namespace g6::fault
