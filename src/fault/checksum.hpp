#pragma once
// Interface-packet checksums (docs/RELIABILITY.md, "Detection").
//
// The real GRAPE-6 host interface carried raw words over LVDS cables with
// no end-to-end integrity check; the operating practice compensated with
// self-test sweeps. The software twin can do better at negligible cost: a
// 64-bit FNV-1a digest over the logical fields of every memory image that
// crosses the host/board boundary (stored j-particles, i-particle
// broadcast packets). One flipped bit anywhere in the image changes the
// digest, so a checksum mismatch pinpoints a corrupted transfer and the
// host can retransmit just that word instead of re-running a self-test.
//
// Hashing goes through the *bit patterns* (std::bit_cast), never the
// numeric values, so +0.0 vs -0.0 and NaN payload differences are all
// detected and the digest is identical on every IEEE-754 host.

#include <bit>
#include <cstdint>
#include <string_view>

#include "hw/formats.hpp"
#include "util/vec3.hpp"

namespace g6::fault {

/// 64-bit FNV-1a, folded one 64-bit word at a time.
class Fnv1a64 {
 public:
  void fold(std::uint64_t word) {
    // Mix each of the 8 bytes so single-bit flips in any byte diffuse.
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (8 * i)) & 0xffULL;
      hash_ *= kPrime;
    }
  }
  void fold(std::int64_t word) { fold(static_cast<std::uint64_t>(word)); }
  void fold(std::uint32_t word) { fold(static_cast<std::uint64_t>(word)); }
  void fold(double value) { fold(std::bit_cast<std::uint64_t>(value)); }
  /// Plain byte-wise FNV-1a — used for file payloads (checkpoint
  /// trailer), where the unit of corruption is a byte, not a word.
  void fold(std::string_view bytes) {
    for (const char c : bytes) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= kPrime;
    }
  }
  void fold(const Vec3& v) {
    fold(v.x);
    fold(v.y);
    fold(v.z);
  }

  std::uint64_t digest() const { return hash_; }

 private:
  static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::uint64_t hash_ = kOffset;
};

/// Digest of a j-particle memory image (what the j-write DMA carries).
inline std::uint64_t checksum(const StoredJParticle& p) {
  Fnv1a64 h;
  h.fold(p.index);
  h.fold(p.mass);
  h.fold(p.t0);
  h.fold(p.pos[0]);
  h.fold(p.pos[1]);
  h.fold(p.pos[2]);
  h.fold(p.vel);
  h.fold(p.acc);
  h.fold(p.jerk);
  h.fold(p.snap);
  return h.digest();
}

/// Digest of an i-particle broadcast packet.
inline std::uint64_t checksum(const IParticlePacket& p) {
  Fnv1a64 h;
  h.fold(p.index);
  h.fold(p.pos[0]);
  h.fold(p.pos[1]);
  h.fold(p.pos[2]);
  h.fold(p.vel);
  h.fold(p.h2);
  return h.digest();
}

}  // namespace g6::fault
