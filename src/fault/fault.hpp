#pragma once
// Umbrella header for the fault subsystem (docs/RELIABILITY.md):
//   errors.hpp     typed taxonomy (TransientFault / HardFault / ...)
//   plan.hpp       FaultPlan + DetectionConfig (what breaks, how we look)
//   injector.hpp   deterministic seeded fault stream
//   checksum.hpp   interface-packet digests
//   checkpoint.hpp atomic run checkpoints + bit-identical resume

#include "fault/checkpoint.hpp"
#include "fault/checksum.hpp"
#include "util/errors.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
