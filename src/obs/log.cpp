#include "obs/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

namespace g6::obs {

namespace {

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kQuiet:
      break;
  }
  return "?";
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{-1};  // -1 = not yet initialized
  return level;
}

}  // namespace

LogLevel parse_log_level(const char* name) {
  if (name == nullptr || *name == '\0') return LogLevel::kInfo;
  char buf[16] = {};
  for (std::size_t i = 0; i + 1 < sizeof(buf) && name[i] != '\0'; ++i) {
    buf[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(name[i])));
  }
  if (std::strcmp(buf, "quiet") == 0 || std::strcmp(buf, "off") == 0 ||
      std::strcmp(buf, "none") == 0) {
    return LogLevel::kQuiet;
  }
  if (std::strcmp(buf, "error") == 0) return LogLevel::kError;
  if (std::strcmp(buf, "warn") == 0 || std::strcmp(buf, "warning") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(buf, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(buf, "debug") == 0 || std::strcmp(buf, "trace") == 0) {
    return LogLevel::kDebug;
  }
  return LogLevel::kInfo;
}

LogLevel log_level() {
  int v = level_store().load(std::memory_order_relaxed);
  if (v < 0) {
    const LogLevel parsed = parse_log_level(std::getenv("G6_LOG_LEVEL"));
    int expected = -1;
    // First caller wins; a concurrent set_log_level() keeps its value.
    level_store().compare_exchange_strong(expected, static_cast<int>(parsed),
                                          std::memory_order_relaxed);
    v = level_store().load(std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void set_log_level(LogLevel level) {
  G6_REQUIRE(static_cast<int>(level) >= 0 && static_cast<int>(level) <= 4);
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace {

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (!log_enabled(level)) return;
  // One formatted buffer, one fputs: lines from concurrent threads may
  // interleave with each other but never mid-line.
  char line[1024];
  const int head =
      std::snprintf(line, sizeof(line), "[g6 %s] ", level_tag(level));
  if (head < 0) return;
  std::vsnprintf(line + head, sizeof(line) - static_cast<std::size_t>(head),
                 fmt, args);
  const std::size_t len = std::strlen(line);
  if (len + 1 < sizeof(line)) {
    line[len] = '\n';
    line[len + 1] = '\0';
  } else {
    line[sizeof(line) - 2] = '\n';
  }
  std::fputs(line, stderr);
}

}  // namespace

void log(LogLevel level, const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  vlog(level, fmt, args);
  va_end(args);
}

#define G6_OBS_DEFINE_LOG_FN(fn, level)   \
  void fn(const char* fmt, ...) {         \
    std::va_list args;                    \
    va_start(args, fmt);                  \
    vlog(level, fmt, args);               \
    va_end(args);                         \
  }

G6_OBS_DEFINE_LOG_FN(log_error, LogLevel::kError)
G6_OBS_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
G6_OBS_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
G6_OBS_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)

#undef G6_OBS_DEFINE_LOG_FN

}  // namespace g6::obs
