#include "obs/context.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::obs {

namespace detail {

thread_local MetricScope* t_metric_scope = nullptr;

void scope_add(const Counter* counter, std::uint64_t delta) {
  const std::string* name = counter->registered_name();
  // Counters constructed outside the registry (tests) have no stable name
  // to key a cell on; they stay global-only.
  if (name == nullptr) return;
  // exec.steals is charged by the *stealing* thread about another job's
  // task: mirroring it would give scopes schedule-dependent key sets, and
  // export_determinism requires per-scope keys to be exact. Denied at the
  // source; the global counter still counts every steal.
  if (*name == "exec.steals") return;
  t_metric_scope->add(name, delta);
}

}  // namespace detail

MetricScope::MetricScope(std::string name, std::uint64_t job,
                         std::string job_class)
    : name_(std::move(name)), job_(job), job_class_(std::move(job_class)) {}

void MetricScope::add(const std::string* counter_name, std::uint64_t delta) {
  const MutexLock lock(mutex_);
  cells_[counter_name] += delta;
}

std::map<std::string, std::uint64_t> MetricScope::snapshot() const {
  const MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, value] : cells_) out.emplace(*name, value);
  return out;
}

std::uint64_t MetricScope::value(std::string_view counter_name) const {
  const MutexLock lock(mutex_);
  for (const auto& [name, value] : cells_) {
    if (*name == counter_name) return value;
  }
  return 0;
}

void MetricScope::reset() {
  const MutexLock lock(mutex_);
  cells_.clear();
}

MetricScope& ScopeRegistry::get_or_create(std::string_view name,
                                          std::uint64_t job,
                                          std::string_view job_class) {
  G6_REQUIRE(!name.empty());
  const MutexLock lock(mutex_);
  auto it = scopes_.find(name);
  if (it == scopes_.end()) {
    it = scopes_
             .emplace(std::string(name),
                      std::make_unique<MetricScope>(std::string(name), job,
                                                    std::string(job_class)))
             .first;
  }
  return *it->second;
}

std::vector<const MetricScope*> ScopeRegistry::scopes() const {
  const MutexLock lock(mutex_);
  std::vector<const MetricScope*> out;
  out.reserve(scopes_.size());
  for (const auto& [name, scope] : scopes_) out.push_back(scope.get());
  return out;
}

const MetricScope* ScopeRegistry::find(std::string_view name) const {
  const MutexLock lock(mutex_);
  auto it = scopes_.find(name);
  return it == scopes_.end() ? nullptr : it->second.get();
}

void ScopeRegistry::reset() {
  G6_REQUIRE(ScopedMetricScope::current() == nullptr);
  const MutexLock lock(mutex_);
  scopes_.clear();
}

void ScopeRegistry::write_json(std::ostream& os) const {
  os << "{";
  bool first_scope = true;
  for (const MetricScope* scope : scopes()) {
    os << (first_scope ? "\n" : ",\n") << "    \"" << json_escape(scope->name())
       << "\": {\"job\": " << scope->job() << ", \"class\": \""
       << json_escape(scope->job_class()) << "\", \"counters\": {";
    bool first_cell = true;
    for (const auto& [name, value] : scope->snapshot()) {
      os << (first_cell ? "" : ", ") << "\"" << json_escape(name)
         << "\": " << value;
      first_cell = false;
    }
    os << "}}";
    first_scope = false;
  }
  os << (first_scope ? "" : "\n  ") << "}";
}

ScopeRegistry& ScopeRegistry::global() {
  static ScopeRegistry registry;
  return registry;
}

ScopedMetricScope::ScopedMetricScope(MetricScope* scope)
    : prev_(detail::t_metric_scope) {
  detail::t_metric_scope = scope;
}

ScopedMetricScope::~ScopedMetricScope() { detail::t_metric_scope = prev_; }

MetricScope* ScopedMetricScope::current() { return detail::t_metric_scope; }

}  // namespace g6::obs
