#pragma once
// Metrics registry: named counters, gauges and histograms, shared by all
// subsystems. Instruments are created on first use and live for the
// process; callers cache the returned reference so the hot path is a
// single relaxed atomic op (counters/gauges) or an uncontended mutex
// (histograms).
//
// Instrument naming scheme (docs/OBSERVABILITY.md): dot-separated,
// subsystem first — "grape.pipeline.cycles", "net.messages",
// "hermite.block_size". Names must be stable across runs; dashboards and
// g6report key on them.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/thread_annotations.hpp"

namespace g6::obs {

struct Eq10Accumulator;
class Counter;
class MetricScope;

namespace detail {
/// The calling thread's attribution scope (obs/context.hpp); installed by
/// ScopedMetricScope, consulted by every Counter::add().
extern thread_local MetricScope* t_metric_scope;
/// Mirror an increment into t_metric_scope (defined in context.cpp).
void scope_add(const Counter* counter, std::uint64_t delta);
}  // namespace detail

/// Monotonically increasing event count (relaxed atomic; totals are read
/// after the threads producing them have joined). When the calling thread
/// carries a MetricScope (per-job attribution, obs/context.hpp) the delta
/// is additionally mirrored into that scope's ledger.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    if (detail::t_metric_scope != nullptr) detail::scope_add(this, delta);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

  /// The registry key this counter was created under (stable std::map key
  /// pointer), or nullptr for counters constructed outside a registry.
  const std::string* registered_name() const { return name_; }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
  const std::string* name_ = nullptr;
};

/// Last-write-wins instantaneous value; add() for accumulated seconds.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution instrument: fixed-bin g6::Histogram for the shape plus a
/// g6::RunningStat for exact moments; one mutex guards both.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double x);

  struct Snapshot {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    std::vector<std::size_t> counts;
  };
  Snapshot snapshot() const;
  void reset();

 private:
  mutable Mutex mutex_;
  double lo_;          // immutable after construction
  double hi_;          // immutable after construction
  std::size_t bins_;   // immutable after construction
  RunningStat stat_ G6_GUARDED_BY(mutex_);
  Histogram hist_ G6_GUARDED_BY(mutex_);
};

/// Get-or-create registry of named instruments. Thread-safe; returned
/// references remain valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `lo`/`hi`/`bins` apply on first creation; later lookups by the same
  /// name return the existing instrument unchanged.
  HistogramMetric& histogram(std::string_view name, double lo, double hi,
                             std::size_t bins);

  /// Zero every instrument (tests; instruments stay registered).
  void reset();

  /// Metrics JSON (schema "grape6-metrics-v1"); `eq10` adds the
  /// time-breakdown object when non-null. Includes a "scopes" section
  /// with the per-job attribution ledgers ({} when none exist).
  void write_json(std::ostream& os, const Eq10Accumulator* eq10 = nullptr) const;

  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& global();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      G6_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      G6_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>>
      histograms_ G6_GUARDED_BY(mutex_);
};

}  // namespace g6::obs
