#pragma once
// Per-job metric attribution (docs/OBSERVABILITY.md).
//
// A MetricScope is a named attribution bucket — one per served job — that
// mirrors every Counter::add() performed while the scope is current on the
// calling thread. The scope is carried in a thread-local pointer installed
// by ScopedMetricScope and propagated across exec::ThreadPool::submit(),
// so work a job forks onto worker threads is still charged to that job.
// The process-global totals in MetricsRegistry are unchanged: a scope is a
// second ledger, and the per-scope values of a counter sum to the global
// value when every increment ran under some scope.
//
// Scopes mirror counters only. Gauges are last-write instantaneous values
// (a per-job copy of "queue depth" is meaningless) and histograms already
// carry per-job context through their observations.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace g6::obs {

class Counter;

/// One attribution bucket (job id + class label + mirrored counter cells).
/// Thread-safe: several worker threads of one job add concurrently.
class MetricScope {
 public:
  MetricScope(std::string name, std::uint64_t job, std::string job_class);
  MetricScope(const MetricScope&) = delete;
  MetricScope& operator=(const MetricScope&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t job() const { return job_; }
  const std::string& job_class() const { return job_class_; }

  /// Mirror `delta` into this scope's cell for the registered counter
  /// `counter_name` (a pointer to the registry's stable key string).
  void add(const std::string* counter_name, std::uint64_t delta);

  /// Counter name -> mirrored value, sorted by name (std::map order).
  std::map<std::string, std::uint64_t> snapshot() const;

  /// Mirrored value for one counter name (0 when never incremented here).
  std::uint64_t value(std::string_view counter_name) const;

  void reset();

 private:
  const std::string name_;
  const std::uint64_t job_;
  const std::string job_class_;
  mutable Mutex mutex_;
  // Keyed by the registry's stable name pointer: one map lookup per
  // mirrored add, names deref'd (and sorted) only at snapshot time.
  std::map<const std::string*, std::uint64_t> cells_ G6_GUARDED_BY(mutex_);
};

/// Get-or-create registry of scopes, exported as the "scopes" section of
/// the metrics JSON. Scope references stay valid until reset().
class ScopeRegistry {
 public:
  MetricScope& get_or_create(std::string_view name, std::uint64_t job,
                             std::string_view job_class);

  /// Scopes sorted by name (export order).
  std::vector<const MetricScope*> scopes() const;

  /// Look up an existing scope by name; nullptr when absent.
  const MetricScope* find(std::string_view name) const;

  /// Drop every scope (tests / between service instances). Callers must
  /// not hold scope pointers across reset — including in the thread-local
  /// current slot (ScopedMetricScope instances must have unwound).
  void reset();

  /// The "scopes" JSON object ({} when no scopes exist).
  void write_json(std::ostream& os) const;

  static ScopeRegistry& global();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricScope>, std::less<>> scopes_
      G6_GUARDED_BY(mutex_);
};

/// RAII: install `scope` as the calling thread's current attribution
/// target; restore the previous one on destruction. Pass nullptr to
/// detach (e.g. scheduler bookkeeping between job quanta).
class ScopedMetricScope {
 public:
  explicit ScopedMetricScope(MetricScope* scope);
  ~ScopedMetricScope();
  ScopedMetricScope(const ScopedMetricScope&) = delete;
  ScopedMetricScope& operator=(const ScopedMetricScope&) = delete;

  /// The calling thread's current scope (nullptr when detached).
  static MetricScope* current();

 private:
  MetricScope* prev_;
};

}  // namespace g6::obs
