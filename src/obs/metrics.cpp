#include "obs/metrics.hpp"

#include <ostream>

#include "obs/context.hpp"
#include "obs/eq10.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace g6::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), hist_(lo, hi, bins) {
  G6_REQUIRE(hi > lo);
  G6_REQUIRE(bins > 0);
}

void HistogramMetric::observe(double x) {
  const MutexLock lock(mutex_);
  stat_.add(x);
  hist_.add(x);
}

HistogramMetric::Snapshot HistogramMetric::snapshot() const {
  const MutexLock lock(mutex_);
  Snapshot s;
  s.count = stat_.count();
  s.mean = stat_.mean();
  s.stddev = stat_.stddev();
  s.min = stat_.min();
  s.max = stat_.max();
  s.sum = stat_.sum();
  s.lo = lo_;
  s.hi = hi_;
  s.counts.resize(hist_.bins());
  for (std::size_t i = 0; i < hist_.bins(); ++i) s.counts[i] = hist_.bin_count(i);
  return s;
}

void HistogramMetric::reset() {
  const MutexLock lock(mutex_);
  stat_ = RunningStat{};
  hist_ = Histogram(lo_, hi_, bins_);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  G6_REQUIRE(!name.empty());
  const MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    // std::map keys never move: the name pointer stays valid for the
    // registry's lifetime, so scopes can key attribution cells on it.
    it->second->name_ = &it->first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  G6_REQUIRE(!name.empty());
  const MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo,
                                            double hi, std::size_t bins) {
  G6_REQUIRE(!name.empty());
  const MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<HistogramMetric>(lo, hi, bins))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::reset() {
  const MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::write_json(std::ostream& os,
                                 const Eq10Accumulator* eq10) const {
  const MutexLock lock(mutex_);
  os.precision(12);
  os << "{\n  \"schema\": \"grape6-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": " << g->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramMetric::Snapshot s = h->snapshot();
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
       << "\": {\"count\": " << s.count << ", \"mean\": " << s.mean
       << ", \"stddev\": " << s.stddev << ", \"min\": " << s.min
       << ", \"max\": " << s.max << ", \"sum\": " << s.sum
       << ", \"lo\": " << s.lo << ", \"hi\": " << s.hi << ", \"counts\": [";
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      os << (i == 0 ? "" : ", ") << s.counts[i];
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"scopes\": ";
  ScopeRegistry::global().write_json(os);
  if (eq10 != nullptr) {
    os << ",\n  \"eq10\": ";
    eq10->write_json(os);
  }
  os << "\n}\n";
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace g6::obs
