#pragma once
// Umbrella header for the telemetry subsystem (docs/OBSERVABILITY.md):
//
//   clock   — the one steady-clock reader in src/
//   log     — leveled stderr logger (G6_LOG_LEVEL)
//   metrics — named counters / gauges / histograms, JSON export
//   phase   — RAII phase spans, Chrome trace-event export (G6_PHASE)
//   eq10    — T_host + T_comm + T_GRAPE accumulation
//   json    — escaping + a small parser for the exported files
//   export  — --metrics-out / --trace-out file writers

#include "obs/clock.hpp"
#include "obs/defs.hpp"
#include "obs/eq10.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
