#pragma once
// Umbrella header for the telemetry subsystem (docs/OBSERVABILITY.md):
//
//   clock   — the one steady-clock reader in src/
//   log     — leveled stderr logger (G6_LOG_LEVEL)
//   metrics — named counters / gauges / histograms, JSON export
//   context — per-job attribution scopes (MetricScope / ScopedMetricScope)
//   sampler — logical-tick time-series snapshots (grape6-timeseries-v1)
//   flight  — lock-free flight-recorder ring (grape6-flightrec-v1)
//   phase   — RAII phase spans, Chrome trace-event export (G6_PHASE)
//   eq10    — T_host + T_comm + T_GRAPE accumulation
//   json    — escaping + a small parser for the exported files
//   export  — --metrics-out / --trace-out / --timeseries-out /
//             --flightrec-out file writers

#include "obs/clock.hpp"
#include "obs/context.hpp"
#include "obs/defs.hpp"
#include "obs/eq10.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/sampler.hpp"
