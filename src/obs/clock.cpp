#include "obs/clock.hpp"

#include "util/check.hpp"

namespace g6::obs {

std::chrono::steady_clock::time_point clock_epoch() {
  // Initialized on first use; steady_clock so later reads can never
  // precede it.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

double monotonic_seconds() {
  // Fetch the epoch before reading the clock: on the very first call the
  // epoch is initialized *now*, and must not postdate the reading.
  const auto epoch = clock_epoch();
  const auto now = std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(now - epoch).count();
  G6_REQUIRE(s >= 0.0);
  return s;
}

}  // namespace g6::obs
