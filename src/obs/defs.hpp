#pragma once
// Compile-time telemetry toggle. The build defines
// GRAPE6_TELEMETRY_ENABLED=0 when configured with -DGRAPE6_TELEMETRY=OFF;
// in that mode phase spans and Eq 10 wall-clock sampling compile to
// nothing (tested by tests/obs/overhead_test.cpp and the obs_overhead
// bench). Default: enabled.

#ifndef GRAPE6_TELEMETRY_ENABLED
#define GRAPE6_TELEMETRY_ENABLED 1
#endif
