#include "obs/sampler.hpp"

#include <ostream>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace g6::obs {

void MetricsSampler::track_counter(std::string_view name) {
  G6_REQUIRE(!name.empty());
  const Counter& c = MetricsRegistry::global().counter(name);
  const MutexLock lock(mutex_);
  for (const auto& ins : instruments_) {
    if (ins.name == name) return;
  }
  G6_REQUIRE(samples_.empty());  // instrument set is fixed once sampling starts
  Instrument ins;
  ins.name = std::string(name);
  ins.is_gauge = false;
  ins.counter = &c;
  instruments_.push_back(std::move(ins));
}

void MetricsSampler::track_gauge(std::string_view name) {
  G6_REQUIRE(!name.empty());
  const Gauge& g = MetricsRegistry::global().gauge(name);
  const MutexLock lock(mutex_);
  for (const auto& ins : instruments_) {
    if (ins.name == name) return;
  }
  G6_REQUIRE(samples_.empty());
  Instrument ins;
  ins.name = std::string(name);
  ins.is_gauge = true;
  ins.gauge = &g;
  instruments_.push_back(std::move(ins));
}

void MetricsSampler::sample() {
  const MutexLock lock(mutex_);
  Row row;
  row.tick = next_tick_++;
  row.t_s = monotonic_seconds();
  row.values.reserve(instruments_.size());
  for (const auto& ins : instruments_) {
    row.values.push_back(ins.is_gauge
                             ? ins.gauge->value()
                             : static_cast<double>(ins.counter->value()));
  }
  samples_.push_back(std::move(row));
}

std::size_t MetricsSampler::instrument_count() const {
  const MutexLock lock(mutex_);
  return instruments_.size();
}

std::size_t MetricsSampler::sample_count() const {
  const MutexLock lock(mutex_);
  return samples_.size();
}

void MetricsSampler::clear() {
  const MutexLock lock(mutex_);
  instruments_.clear();
  samples_.clear();
  next_tick_ = 0;
}

void MetricsSampler::write_json(std::ostream& os) const {
  const MutexLock lock(mutex_);
  os.precision(12);
  os << "{\n  \"schema\": \"grape6-timeseries-v1\",\n  \"instruments\": [";
  bool first = true;
  for (const auto& ins : instruments_) {
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << json_escape(ins.name)
       << "\", \"kind\": \"" << (ins.is_gauge ? "gauge" : "counter") << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n  \"samples\": [";
  first = true;
  for (const auto& row : samples_) {
    os << (first ? "\n" : ",\n") << "    {\"tick\": " << row.tick
       << ", \"t_s\": " << row.t_s << ", \"values\": [";
    for (std::size_t i = 0; i < row.values.size(); ++i) {
      os << (i == 0 ? "" : ", ");
      if (instruments_[i].is_gauge) {
        os << row.values[i];
      } else {
        os << static_cast<std::uint64_t>(row.values[i]);
      }
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

MetricsSampler& MetricsSampler::global() {
  static MetricsSampler sampler;
  return sampler;
}

}  // namespace g6::obs
