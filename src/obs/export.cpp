#include "obs/export.hpp"

#include <fstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6::obs {

bool export_metrics_json(const std::string& path, const Eq10Accumulator* eq10) {
  if (path.empty()) return true;
  G6_REQUIRE(path.find('\0') == std::string::npos);
  std::ofstream os(path);
  if (!os) {
    log_error("cannot open metrics output file %s", path.c_str());
    return false;
  }
  MetricsRegistry::global().write_json(os, eq10);
  os.flush();
  if (!os) {
    log_error("failed writing metrics JSON to %s", path.c_str());
    return false;
  }
  log_info("wrote metrics JSON to %s", path.c_str());
  return true;
}

bool export_chrome_trace(const std::string& path) {
  if (path.empty()) return true;
  G6_REQUIRE(path.find('\0') == std::string::npos);
  std::ofstream os(path);
  if (!os) {
    log_error("cannot open trace output file %s", path.c_str());
    return false;
  }
  Tracer::global().write_chrome_trace(os);
  os.flush();
  if (!os) {
    log_error("failed writing Chrome trace to %s", path.c_str());
    return false;
  }
  log_info("wrote Chrome trace (%zu events) to %s",
           Tracer::global().event_count(), path.c_str());
  return true;
}

}  // namespace g6::obs
