#include "obs/export.hpp"

#include <ostream>

#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/sampler.hpp"
#include "util/check.hpp"
#include "util/fileio.hpp"

namespace g6::obs {

bool export_metrics_json(const std::string& path, const Eq10Accumulator* eq10) {
  if (path.empty()) return true;
  G6_REQUIRE(path.find('\0') == std::string::npos);
  // Atomic write-then-rename: a consumer polling the file (dashboards,
  // CI assertions) never observes a half-written JSON document.
  try {
    write_file_atomic(
        path, [&](std::ostream& os) { MetricsRegistry::global().write_json(os, eq10); });
  } catch (const IoError& e) {
    log_error("failed writing metrics JSON to %s: %s", path.c_str(), e.what());
    return false;
  }
  log_info("wrote metrics JSON to %s", path.c_str());
  return true;
}

bool export_chrome_trace(const std::string& path) {
  if (path.empty()) return true;
  G6_REQUIRE(path.find('\0') == std::string::npos);
  try {
    write_file_atomic(path,
                      [](std::ostream& os) { Tracer::global().write_chrome_trace(os); });
  } catch (const IoError& e) {
    log_error("failed writing Chrome trace to %s: %s", path.c_str(), e.what());
    return false;
  }
  log_info("wrote Chrome trace (%zu events) to %s",
           Tracer::global().event_count(), path.c_str());
  return true;
}

bool export_timeseries_json(const std::string& path) {
  if (path.empty()) return true;
  G6_REQUIRE(path.find('\0') == std::string::npos);
  try {
    write_file_atomic(path, [](std::ostream& os) {
      MetricsSampler::global().write_json(os);
    });
  } catch (const IoError& e) {
    log_error("failed writing time-series JSON to %s: %s", path.c_str(),
              e.what());
    return false;
  }
  log_info("wrote time-series JSON (%zu samples) to %s",
           MetricsSampler::global().sample_count(), path.c_str());
  return true;
}

bool export_flight_json(const std::string& path) {
  if (path.empty()) return true;
  G6_REQUIRE(path.find('\0') == std::string::npos);
  try {
    write_file_atomic(path, [](std::ostream& os) {
      FlightRecorder::global().write_json(os);
    });
  } catch (const IoError& e) {
    log_error("failed writing flight JSON to %s: %s", path.c_str(), e.what());
    return false;
  }
  log_info("wrote flight JSON (%llu events) to %s",
           static_cast<unsigned long long>(FlightRecorder::global().recorded()),
           path.c_str());
  return true;
}

}  // namespace g6::obs
