#include "obs/flight.hpp"

#include <algorithm>
#include <ostream>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace g6::obs {

const char* flight_event_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::kQuantumStart: return "quantum_start";
    case FlightEventType::kQuantumEnd: return "quantum_end";
    case FlightEventType::kPreempt: return "preempt";
    case FlightEventType::kRevoke: return "revoke";
    case FlightEventType::kBoardDeath: return "board_death";
    case FlightEventType::kFaultDetected: return "fault_detected";
    case FlightEventType::kRetry: return "retry";
    case FlightEventType::kRequeue: return "requeue";
    case FlightEventType::kJobCompleted: return "job_completed";
    case FlightEventType::kJobFailed: return "job_failed";
    case FlightEventType::kLeaseResize: return "lease_resize";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : slots_(capacity) {
  G6_REQUIRE(capacity > 0);
}

void FlightRecorder::record(FlightEventType type, std::uint64_t job,
                            std::int64_t a, std::int64_t b,
                            const char* detail) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];
  // Invalidate, write payload relaxed, publish with release: a snapshot
  // that reads seq_plus1 twice and sees the same nonzero value got a
  // consistent copy (modulo a full ring wrap between the two reads, which
  // post-quiescence dumps never see).
  slot.seq_plus1.store(0, std::memory_order_release);
  slot.t_s.store(monotonic_seconds(), std::memory_order_relaxed);
  slot.type.store(static_cast<std::uint8_t>(type), std::memory_order_relaxed);
  slot.job.store(job, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.detail.store(detail, std::memory_order_relaxed);
  slot.seq_plus1.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.seq_plus1.load(std::memory_order_acquire);
    if (before == 0) continue;
    FlightEvent ev;
    ev.seq = before - 1;
    ev.t_s = slot.t_s.load(std::memory_order_relaxed);
    ev.type = static_cast<FlightEventType>(
        slot.type.load(std::memory_order_relaxed));
    ev.job = slot.job.load(std::memory_order_relaxed);
    ev.a = slot.a.load(std::memory_order_relaxed);
    ev.b = slot.b.load(std::memory_order_relaxed);
    ev.detail = slot.detail.load(std::memory_order_relaxed);
    if (slot.seq_plus1.load(std::memory_order_acquire) != before) continue;
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  return next_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t n = recorded();
  return n > slots_.size() ? n - slots_.size() : 0;
}

void FlightRecorder::clear() {
  next_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.seq_plus1.store(0, std::memory_order_release);
  }
}

void FlightRecorder::write_json(std::ostream& os) const {
  const std::vector<FlightEvent> events = snapshot();
  os.precision(12);
  os << "{\n  \"schema\": \"grape6-flightrec-v1\",\n  \"capacity\": "
     << capacity() << ",\n  \"recorded\": " << recorded()
     << ",\n  \"dropped\": " << dropped() << ",\n  \"events\": [";
  bool first = true;
  for (const FlightEvent& ev : events) {
    os << (first ? "\n" : ",\n") << "    {\"seq\": " << ev.seq
       << ", \"t_s\": " << ev.t_s << ", \"type\": \""
       << flight_event_name(ev.type) << "\", \"job\": " << ev.job
       << ", \"a\": " << ev.a << ", \"b\": " << ev.b;
    if (ev.detail != nullptr) {
      os << ", \"detail\": \"" << json_escape(ev.detail) << "\"";
    }
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

}  // namespace g6::obs
