#pragma once
// Flight recorder: a fixed-size lock-free ring of structured scheduler /
// fault events, dumped to JSON on HardFault, RetryExhausted or abort so a
// chaos-run post-mortem does not depend on log scraping
// (docs/OBSERVABILITY.md).
//
// record() is wait-free for writers (one fetch_add claims a slot, payload
// fields are relaxed atomics published by a release store of the slot
// sequence) and is safe to call from quantum tasks on worker threads
// while the control thread is serially bookkeeping. When the ring wraps,
// the oldest events are overwritten and counted as dropped — a flight
// recorder keeps the newest history, which is the part a post-mortem
// needs.
//
// The dump is NOT byte-deterministic between identical runs: slot claim
// order interleaves worker-thread events by OS schedule, and t_s is wall
// clock. export_determinism therefore never diffs flight dumps (policy in
// docs/OBSERVABILITY.md); tests assert on the per-job event *subsequence*,
// which is deterministic.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace g6::obs {

enum class FlightEventType : std::uint8_t {
  kQuantumStart = 0,
  kQuantumEnd,
  kPreempt,
  kRevoke,
  kBoardDeath,
  kFaultDetected,
  kRetry,
  kRequeue,
  kJobCompleted,
  kJobFailed,
  kLeaseResize,
};

/// Stable lowercase identifier ("quantum_start", ...): the JSON "type".
const char* flight_event_name(FlightEventType type);

struct FlightEvent {
  std::uint64_t seq = 0;  ///< global claim order (0-based)
  double t_s = 0.0;       ///< telemetry clock at record()
  FlightEventType type = FlightEventType::kQuantumStart;
  std::uint64_t job = 0;       ///< owning job id; 0 = none/process-level
  std::int64_t a = 0;          ///< event-specific (board id, round, ...)
  std::int64_t b = 0;          ///< event-specific second operand
  const char* detail = nullptr;  ///< static-lifetime string or nullptr
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one event (wait-free; callable from any thread).
  /// `detail` must be a string literal or otherwise outlive the recorder.
  void record(FlightEventType type, std::uint64_t job, std::int64_t a = 0,
              std::int64_t b = 0, const char* detail = nullptr);

  /// Fully-published events, sorted by seq (oldest surviving first).
  /// Torn slots (a writer mid-publish) are skipped.
  std::vector<FlightEvent> snapshot() const;

  std::uint64_t recorded() const;  ///< total record() calls
  std::uint64_t dropped() const;   ///< overwritten by ring wrap
  std::size_t capacity() const { return slots_.size(); }

  void clear();

  /// Flight JSON, schema "grape6-flightrec-v1".
  void write_json(std::ostream& os) const;

  /// The process-wide recorder the scheduler and engine report into.
  static FlightRecorder& global();

  static constexpr std::size_t kDefaultCapacity = 4096;

 private:
  // seq_plus1 == 0 marks an empty/in-flight slot; a claimed slot stores
  // its event seq + 1 with release order after the payload (relaxed
  // atomics, so concurrent snapshot() copies are race-free under TSan).
  struct Slot {
    std::atomic<std::uint64_t> seq_plus1{0};
    std::atomic<double> t_s{0.0};
    std::atomic<std::uint8_t> type{0};
    std::atomic<std::uint64_t> job{0};
    std::atomic<std::int64_t> a{0};
    std::atomic<std::int64_t> b{0};
    std::atomic<const char*> detail{nullptr};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace g6::obs
