#pragma once
// Equation (10) accumulator: T_single = T_host + T_comm + T_GRAPE, with
// T_comm split into its DMA and network parts as in Sec 4.4 of the paper.
//
// Two producers feed the same struct:
//  * real integrations (HermiteIntegrator, AhmadCohenIntegrator,
//    TreecodeIntegrator) carve each blockstep's *wall* time into phases
//    with an Eq10Stepper — any run can print its own breakdown;
//  * model-driven paths (benches, VirtualCluster) add *virtual* seconds
//    straight from a BlockstepCost-style decomposition.
// Either way the identity host + dma + net + grape ≈ total holds, which
// the integration tests assert.

#include <cstdint>
#include <cstdio>
#include <iosfwd>

#include "obs/defs.hpp"

namespace g6::obs {

struct Eq10Accumulator {
  double host_s = 0.0;   ///< predictor, corrector, block bookkeeping
  double dma_s = 0.0;    ///< host<->GRAPE transfers (j-send, i-send, results)
  double net_s = 0.0;    ///< host<->host messages and barriers
  double grape_s = 0.0;  ///< pipeline + on-board reduction
  double total_s = 0.0;  ///< independently measured span of the same steps
  std::uint64_t steps = 0;
  std::uint64_t blocksteps = 0;

  double comm_s() const { return dma_s + net_s; }
  double accounted_s() const { return host_s + dma_s + net_s + grape_s; }
  /// Time in total_s not attributed to any phase (loop overhead etc.).
  double residual_s() const { return total_s - accounted_s(); }

  void add_phases(double host, double dma, double net, double grape,
                  double total) {
    host_s += host;
    dma_s += dma;
    net_s += net;
    grape_s += grape;
    total_s += total;
  }
  void add_steps(std::uint64_t n_steps, std::uint64_t n_blocksteps = 1) {
    steps += n_steps;
    blocksteps += n_blocksteps;
  }
  void merge(const Eq10Accumulator& o) {
    add_phases(o.host_s, o.dma_s, o.net_s, o.grape_s, o.total_s);
    add_steps(o.steps, o.blocksteps);
  }

  /// Dominant term by the paper's categories: "host"|"dma"|"grape"|"net".
  const char* bottleneck() const;

  /// Seconds per individual particle step, 0 when no steps recorded.
  double time_per_step_s() const {
    return steps > 0 ? total_s / static_cast<double>(steps) : 0.0;
  }

  /// JSON object (the "eq10" section of the metrics schema).
  void write_json(std::ostream& os) const;

  /// Human-readable breakdown table.
  void print(std::FILE* out) const;
};

/// Phase attribution for one blockstep, measured on the telemetry clock.
/// Construct at the top of step(); call phase() at each transition; the
/// destructor charges the segments plus the total span to the
/// accumulator. Compiles to nothing with GRAPE6_TELEMETRY=OFF.
class Eq10Stepper {
 public:
  enum class Phase { kHost = 0, kDma = 1, kNet = 2, kGrape = 3 };

#if GRAPE6_TELEMETRY_ENABLED
  explicit Eq10Stepper(Eq10Accumulator& acc);
  ~Eq10Stepper();
  Eq10Stepper(const Eq10Stepper&) = delete;
  Eq10Stepper& operator=(const Eq10Stepper&) = delete;

  /// Close the current segment and start attributing to `p`.
  void phase(Phase p);

 private:
  Eq10Accumulator* acc_;
  double t_start_;
  double t_segment_;
  Phase current_ = Phase::kHost;
  double part_[4] = {0.0, 0.0, 0.0, 0.0};
#else
  explicit Eq10Stepper(Eq10Accumulator& acc) { (void)acc; }
  void phase(Phase p) { (void)p; }
#endif
};

}  // namespace g6::obs
