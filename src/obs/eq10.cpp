#include "obs/eq10.hpp"

#include <ostream>

#include "obs/clock.hpp"
#include "util/check.hpp"

namespace g6::obs {

const char* Eq10Accumulator::bottleneck() const {
  const char* name = "host";
  double worst = host_s;
  if (dma_s > worst) {
    worst = dma_s;
    name = "dma";
  }
  if (grape_s > worst) {
    worst = grape_s;
    name = "grape";
  }
  if (net_s > worst) {
    worst = net_s;
    name = "net";
  }
  return name;
}

void Eq10Accumulator::write_json(std::ostream& os) const {
  os.precision(12);
  os << "{\"host_s\": " << host_s << ", \"dma_s\": " << dma_s
     << ", \"net_s\": " << net_s << ", \"grape_s\": " << grape_s
     << ", \"comm_s\": " << comm_s() << ", \"total_s\": " << total_s
     << ", \"residual_s\": " << residual_s() << ", \"steps\": " << steps
     << ", \"blocksteps\": " << blocksteps << ", \"bottleneck\": \""
     << bottleneck() << "\"}";
}

void Eq10Accumulator::print(std::FILE* out) const {
  G6_REQUIRE(out != nullptr);
  const double total = total_s > 0.0 ? total_s : 1.0;
  std::fprintf(out,
               "Eq 10 breakdown (T = T_host + T_comm + T_GRAPE):\n"
               "  T_host  %12.6f s  (%5.1f%%)\n"
               "  T_comm  %12.6f s  (%5.1f%%)  [dma %.6f s, net %.6f s]\n"
               "  T_GRAPE %12.6f s  (%5.1f%%)\n"
               "  T_total %12.6f s over %llu steps in %llu blocksteps "
               "(bottleneck: %s)\n",
               host_s, 100.0 * host_s / total, comm_s(),
               100.0 * comm_s() / total, dma_s, net_s, grape_s,
               100.0 * grape_s / total, total_s,
               static_cast<unsigned long long>(steps),
               static_cast<unsigned long long>(blocksteps), bottleneck());
}

#if GRAPE6_TELEMETRY_ENABLED

Eq10Stepper::Eq10Stepper(Eq10Accumulator& acc)
    : acc_(&acc), t_start_(monotonic_seconds()), t_segment_(t_start_) {}

void Eq10Stepper::phase(Phase p) {
  const double now = monotonic_seconds();
  part_[static_cast<int>(current_)] += now - t_segment_;
  t_segment_ = now;
  current_ = p;
}

Eq10Stepper::~Eq10Stepper() {
  const double now = monotonic_seconds();
  part_[static_cast<int>(current_)] += now - t_segment_;
  acc_->add_phases(part_[0], part_[1], part_[2], part_[3], now - t_start_);
}

#endif  // GRAPE6_TELEMETRY_ENABLED

}  // namespace g6::obs
