#include "obs/phase.hpp"

#include <algorithm>
#include <ostream>

#include "obs/clock.hpp"
#include "obs/context.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace g6::obs {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer* Tracer::buffer_for_this_thread() {
  // Each thread caches its buffer per tracer instance. The shared_ptr in
  // the tracer's list keeps the buffer alive after thread exit, so
  // recorded events survive until export.
  struct Cached {
    Tracer* owner;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  thread_local std::vector<Cached> cache;
  for (const auto& c : cache) {
    if (c.owner == this) return c.buffer.get();
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    const MutexLock lock(mutex_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  cache.push_back({this, buffer});
  return buffer.get();
}

void Tracer::record(const TraceEvent& ev) {
  G6_REQUIRE(ev.name != nullptr);
  ThreadBuffer* buf = buffer_for_this_thread();
  const MutexLock lock(buf->mutex);
  TraceEvent copy = ev;
  copy.tid = buf->tid;
  buf->events.push_back(copy);
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceEvent> all;
  {
    const MutexLock lock(mutex_);
    for (const auto& buf : buffers_) {
      const MutexLock buf_lock(buf->mutex);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  os.precision(12);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \"grape6sim\"}}";
  for (const auto& ev : all) {
    os << ",\n  {\"name\": \"" << json_escape(ev.name)
       << "\", \"cat\": \"g6\", \"ph\": \"X\", \"ts\": " << ev.ts_us
       << ", \"dur\": " << ev.dur_us << ", \"pid\": 1, \"tid\": " << ev.tid;
    if (ev.job != 0) os << ", \"args\": {\"job\": " << ev.job << "}";
    os << "}";
  }
  os << "\n]}\n";
}

std::size_t Tracer::event_count() const {
  const MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    const MutexLock buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  const MutexLock lock(mutex_);
  for (const auto& buf : buffers_) {
    const MutexLock buf_lock(buf->mutex);
    buf->events.clear();
  }
}

#if GRAPE6_TELEMETRY_ENABLED

PhaseSpan::PhaseSpan(const char* name) : name_(name) {
  G6_ASSERT(name != nullptr);
  if (Tracer::global().enabled()) {
    start_us_ = monotonic_seconds() * 1e6;
  }
}

PhaseSpan::~PhaseSpan() {
  if (start_us_ < 0.0) return;
  TraceEvent ev;
  ev.name = name_;
  ev.ts_us = start_us_;
  ev.dur_us = monotonic_seconds() * 1e6 - start_us_;
  // Stamp the owning job: a span recorded while a per-job metric scope is
  // current belongs to that job (serve.job spans and everything nested
  // under them — grape.pipeline, DMA, hermite phases — on any thread).
  if (const MetricScope* scope = ScopedMetricScope::current()) {
    ev.job = scope->job();
  }
  Tracer::global().record(ev);
}

#endif  // GRAPE6_TELEMETRY_ENABLED

}  // namespace g6::obs
