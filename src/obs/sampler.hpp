#pragma once
// Time-series sampling of registered instruments (docs/OBSERVABILITY.md).
//
// A MetricsSampler snapshots a fixed set of tracked counters/gauges into
// one row per tick. Ticks are LOGICAL — the serve scheduler samples once
// per round, grape6_serve once per run phase — never wall-clock driven:
// two identical runs must produce the same number of rows with the same
// deterministic series values, so export_determinism can diff the export
// (wall-clock columns like t_s, and schedule-dependent series like
// exec.steals, are exempted by value there, the way metric exports
// already exempt them).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace g6::obs {

class Counter;
class Gauge;

/// Snapshot a registered instrument set into append-only sample rows;
/// export as "grape6-timeseries-v1" JSON. Thread-safe; in practice one
/// control thread ticks it.
class MetricsSampler {
 public:
  /// Register a global-registry counter/gauge by name (creates the
  /// instrument if needed). Idempotent; tracking order is export order.
  void track_counter(std::string_view name);
  void track_gauge(std::string_view name);

  /// Record one row: (tick, t_s, value of every tracked instrument).
  void sample();

  std::size_t instrument_count() const;
  std::size_t sample_count() const;

  /// Drop samples AND tracked instruments (tests / between services).
  void clear();

  /// Time-series JSON, schema "grape6-timeseries-v1".
  void write_json(std::ostream& os) const;

  /// The process-wide sampler the serve scheduler ticks.
  static MetricsSampler& global();

 private:
  struct Instrument {
    std::string name;
    bool is_gauge = false;
    const Counter* counter = nullptr;  // exactly one of counter/gauge set
    const Gauge* gauge = nullptr;
  };
  struct Row {
    std::uint64_t tick = 0;
    double t_s = 0.0;
    std::vector<double> values;  // parallel to instruments_
  };

  mutable Mutex mutex_;
  std::vector<Instrument> instruments_ G6_GUARDED_BY(mutex_);
  std::vector<Row> samples_ G6_GUARDED_BY(mutex_);
  std::uint64_t next_tick_ G6_GUARDED_BY(mutex_) = 0;
};

}  // namespace g6::obs
