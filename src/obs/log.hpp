#pragma once
// Leveled logger for progress / diagnostic lines that previously went to
// stderr via scattered fprintf calls. Program *output* (tables, results)
// still goes to stdout; the logger is for everything a user might want to
// silence (G6_LOG_LEVEL=quiet) or crank up (G6_LOG_LEVEL=debug).
//
// Levels: quiet < error < warn < info < debug. Default: info.
// Selection: G6_LOG_LEVEL environment variable, overridable in-process
// with set_log_level(). Output: one line to stderr, prefixed "[g6 warn]".

#include <cstdarg>

namespace g6::obs {

enum class LogLevel : int {
  kQuiet = 0,  ///< nothing at all
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

/// Current threshold (first call parses G6_LOG_LEVEL once).
LogLevel log_level();

/// Programmatic override; wins over the environment.
void set_log_level(LogLevel level);

/// Parse "quiet"/"error"/"warn"/"info"/"debug" (case-insensitive).
/// Unknown strings fall back to kInfo.
LogLevel parse_log_level(const char* name);

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level()) &&
         level != LogLevel::kQuiet;
}

/// printf-style log line at `level`; dropped when below the threshold.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void log(LogLevel level, const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_error(const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_warn(const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_info(const char* fmt, ...);

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
void log_debug(const char* fmt, ...);

}  // namespace g6::obs
