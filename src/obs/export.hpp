#pragma once
// File export for the global telemetry sinks: metrics JSON and Chrome
// trace JSON. Shared by grape6_run and the benches so every driver grows
// the same --metrics-out / --trace-out behaviour.

#include <string>

namespace g6::obs {

struct Eq10Accumulator;

/// Write the global MetricsRegistry as metrics JSON ("grape6-metrics-v1")
/// to `path`; `eq10` adds the time-breakdown section when non-null.
/// Empty path is a no-op. Returns false (and logs an error) on I/O failure.
bool export_metrics_json(const std::string& path,
                         const Eq10Accumulator* eq10 = nullptr);

/// Write the global Tracer's events as Chrome trace-event JSON to `path`
/// (open in Perfetto / chrome://tracing). Empty path is a no-op. Returns
/// false (and logs an error) on I/O failure.
bool export_chrome_trace(const std::string& path);

/// Write the global MetricsSampler's rows as time-series JSON
/// ("grape6-timeseries-v1") to `path`. Empty path is a no-op. Returns
/// false (and logs an error) on I/O failure.
bool export_timeseries_json(const std::string& path);

/// Write the global FlightRecorder's ring as flight JSON
/// ("grape6-flightrec-v1") to `path`. Empty path is a no-op. Returns
/// false (and logs an error) on I/O failure. Safe to call from a fault
/// handler path (no allocation beyond the JSON buffer).
bool export_flight_json(const std::string& path);

}  // namespace g6::obs
