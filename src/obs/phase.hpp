#pragma once
// RAII phase spans and the tracer that collects them.
//
// A PhaseSpan marks one phase of the machine (predict, j-send, pipeline,
// reduce, correct, tree-build, ...). Spans nest naturally — Chrome
// "complete" events on the same thread reconstruct the stack from the
// timestamps — and each thread appends to its own buffer, so worker
// threads in the force loops can record without contending.
//
// Collection is off by default: a disabled span costs one relaxed atomic
// load (checked by tests/obs/overhead_test.cpp). Enable with
// Tracer::global().enable() or the --trace-out flag of grape6_run; export
// with write_chrome_trace() and open the file in Perfetto /
// chrome://tracing (docs/OBSERVABILITY.md).

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "obs/defs.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace g6::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< static-lifetime string (phase names)
  double ts_us = 0.0;          ///< start, microseconds on the telemetry clock
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::uint64_t job = 0;  ///< owning serve job id (0 = unattributed);
                          ///< exported as args.job in the Chrome trace
};

class Tracer {
 public:
  /// The process-wide tracer PhaseSpan records into.
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Append one finished span to this thread's buffer.
  void record(const TraceEvent& ev);

  /// Chrome trace-event JSON ({"traceEvents": [...]}); events from all
  /// threads, sorted by start time. Call after worker threads joined.
  void write_chrome_trace(std::ostream& os) const;

  std::size_t event_count() const;
  void clear();

 private:
  struct ThreadBuffer {
    Mutex mutex;  ///< uncontended in steady state (owner thread only)
    std::vector<TraceEvent> events G6_GUARDED_BY(mutex);
    std::uint32_t tid = 0;  ///< immutable after registration publishes it
  };

  ThreadBuffer* buffer_for_this_thread();

  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;  ///< guards buffers_ registration/iteration
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ G6_GUARDED_BY(mutex_);
  std::uint32_t next_tid_ G6_GUARDED_BY(mutex_) = 1;
};

#if GRAPE6_TELEMETRY_ENABLED

class PhaseSpan {
 public:
  /// `name` must outlive the tracer (pass string literals).
  explicit PhaseSpan(const char* name);
  ~PhaseSpan();
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  const char* name_;
  double start_us_ = -1.0;  ///< -1 = tracer disabled at entry, record nothing
};

#else

class PhaseSpan {
 public:
  explicit PhaseSpan(const char* name) { (void)name; }
};

#endif  // GRAPE6_TELEMETRY_ENABLED

}  // namespace g6::obs

// Statement macro for the common case: G6_PHASE("hermite.predict"); spans the
// rest of the enclosing scope.
#define G6_OBS_CONCAT_INNER(a, b) a##b
#define G6_OBS_CONCAT(a, b) G6_OBS_CONCAT_INNER(a, b)
#if GRAPE6_TELEMETRY_ENABLED
#define G6_PHASE(name) \
  ::g6::obs::PhaseSpan G6_OBS_CONCAT(g6_phase_span_, __LINE__)(name)
#else
#define G6_PHASE(name) ((void)0)
#endif
