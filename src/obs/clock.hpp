#pragma once
// The telemetry clock: the single place in src/ where wall time is read.
// Everything else (phase spans, Eq 10 accumulation, treecode throughput)
// measures through monotonic_seconds() so that g6lint can enforce "no raw
// std::chrono outside src/obs/" and a future virtual-time test double only
// has one seam to replace.

#include <chrono>

namespace g6::obs {

/// Monotonic seconds since an arbitrary process-local epoch (the first
/// call). steady_clock, never wall-clock: immune to NTP jumps, safe for
/// durations.
double monotonic_seconds();

/// The epoch used by monotonic_seconds(), as a steady_clock time_point —
/// exposed so trace timestamps from different threads share one origin.
std::chrono::steady_clock::time_point clock_epoch();

}  // namespace g6::obs
