#pragma once
// Minimal JSON support for the telemetry subsystem: escaping for the
// writers and a small recursive-descent parser for the readers (g6report,
// tests validating --metrics-out / --trace-out files). Handles the full
// JSON grammar; numbers are doubles.

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g6::obs {

/// Escape `s` for use inside a JSON string literal (no surrounding
/// quotes added).
std::string json_escape(std::string_view s);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input (trailing garbage included).
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;  ///< array elements
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object lookup; nullptr when absent (or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object lookup; throws std::runtime_error when absent.
  const JsonValue& at(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace g6::obs
