#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/check.hpp"

namespace g6::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs are not needed for
          // telemetry files, which are ASCII instrument names).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || !std::isfinite(d)) {
      pos_ = start;
      fail("bad number");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  G6_REQUIRE(!text.empty());
  return JsonParser(text).parse_document();
}

}  // namespace g6::obs
