#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "obs/context.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/check.hpp"

namespace g6::exec {

namespace {

/// Which pool (if any) owns the current thread, and its queue index.
struct WorkerTls {
  ThreadPool* pool = nullptr;
  unsigned idx = 0;
};
thread_local WorkerTls t_worker;

// Instrument references resolve once; the registry keeps them alive and
// reset() zeroes in place, so caching across calls is safe.
obs::Counter& tasks_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.tasks");
  return c;
}
obs::Counter& inline_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.inline_tasks");
  return c;
}
obs::Counter& steal_counter() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("exec.steals");
  return c;
}
obs::Gauge& depth_gauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::global().gauge("exec.queue_depth");
  return g;
}

// The global instance (guarded by g_pool_m). A unique_ptr rather than a
// function-local static so set_global_threads can rebuild it — the
// determinism tests run the same problem at 1/2/8 threads in one process.
Mutex g_pool_m;  // NOLINT(cert-err58-cpp) trivial ctor
std::unique_ptr<ThreadPool> g_pool   // NOLINT(cert-err58-cpp) trivial ctor
    G6_GUARDED_BY(g_pool_m);
unsigned g_requested G6_GUARDED_BY(g_pool_m) = 0;  // last set_global_threads

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  G6_REQUIRE(threads >= 1);
  G6_REQUIRE(threads <= 4096);
  const unsigned workers = threads - 1;
  queues_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lk(sleep_m_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (auto& th : workers_) th.join();
  // Orphaned tasks (a caller that never joined) still run, on this thread,
  // so their side effects are not silently lost.
  Task t;
  while (pop_task(t)) t();
}

void ThreadPool::submit(Task task) {
  if (queues_.empty()) {
    // Serial fallback: no workers, no queues — run right here. TaskGroup
    // short-circuits before reaching this, but raw submitters need it too.
    // The submitter's attribution scope is already ambient on this thread.
    inline_counter().add(1);
    task();
    return;
  }
  // Carry the submitter's per-job attribution scope (obs/context.hpp) onto
  // whichever thread dequeues the task: submit() is the one funnel every
  // queued task passes through, so scoping here is what makes per-job
  // counters survive the pool boundary. The exec.tasks count below runs on
  // the submitting thread and is charged to the same scope — deterministic,
  // unlike exec.steals which is denied from scopes at the source.
  if (obs::MetricScope* scope = obs::ScopedMetricScope::current()) {
    task = [scope, inner = std::move(task)] {
      const obs::ScopedMetricScope attribution(scope);
      inner();
    };
  }
  tasks_counter().add(1);
  const bool own = t_worker.pool == this;
  const std::size_t target =
      own ? t_worker.idx
          : rr_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    // Local reference so the guard's capability expression names one
    // object the analysis can track (que.m guards que.q).
    Queue& que = *queues_[target];
    MutexLock lk(que.m);
    if (own) {
      que.q.push_front(std::move(task));
    } else {
      que.q.push_back(std::move(task));
    }
  }
  depth_gauge().set(static_cast<double>(
      queued_.fetch_add(1, std::memory_order_relaxed) + 1));
  // Lock/unlock pairs with the worker's check-then-wait under sleep_m_:
  // either the worker sees the queued_ bump, or it is already waiting and
  // the notify reaches it. Without this fence the wakeup can be lost.
  { MutexLock lk(sleep_m_); }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_task(Task& out) {
  if (queues_.empty()) return false;
  const std::size_t n = queues_.size();
  const bool own = t_worker.pool == this;
  const std::size_t home = own ? t_worker.idx : 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t qi = (home + k) % n;
    Queue& que = *queues_[qi];
    MutexLock lk(que.m);
    if (que.q.empty()) continue;
    if (own && qi == home) {
      // Own queue: LIFO end (depth-first; nested tasks stay warm).
      out = std::move(que.q.front());
      que.q.pop_front();
    } else {
      // Someone else's queue: steal from the FIFO end.
      out = std::move(que.q.back());
      que.q.pop_back();
      steal_counter().add(1);
    }
    depth_gauge().set(static_cast<double>(
        queued_.fetch_sub(1, std::memory_order_relaxed) - 1));
    return true;
  }
  return false;
}

bool ThreadPool::try_run_one() {
  Task t;
  if (!pop_task(t)) return false;
  G6_PHASE("exec.task");
  t();
  return true;
}

void ThreadPool::worker_main(unsigned idx) {
  t_worker.pool = this;
  t_worker.idx = idx;
  for (;;) {
    if (try_run_one()) continue;
    MutexLock lk(sleep_m_);
    if (stop_) return;
    // Re-check under the mutex: a submit between our empty scan and this
    // lock bumped queued_ before notifying, so we cannot miss it.
    if (queued_.load(std::memory_order_relaxed) > 0) continue;
    sleep_cv_.wait(sleep_m_);
    if (stop_) return;
  }
}

unsigned ThreadPool::resolve_thread_count(unsigned requested, const char* env,
                                          unsigned hardware) {
  if (requested >= 1) return std::min(requested, 4096u);
  if (env != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<unsigned>(v);
    }
  }
  return std::max(hardware, 1u);
}

ThreadPool& ThreadPool::global() {
  MutexLock lk(g_pool_m);
  if (!g_pool) {
    const unsigned n = resolve_thread_count(
        g_requested, std::getenv("G6_EXEC_THREADS"),
        std::thread::hardware_concurrency());
    g_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_pool;
}

void ThreadPool::set_global_threads(unsigned threads) {
  MutexLock lk(g_pool_m);
  G6_REQUIRE(threads <= 4096);
  g_requested = threads;
  g_pool.reset();  // recreated lazily on the next global()
}

TaskGroup::TaskGroup(ThreadPool& pool)
    : pool_(pool), st_(std::make_shared<State>()) {}

TaskGroup::~TaskGroup() {
  if (waited_) return;
  try {
    wait();
  } catch (...) {  // NOLINT(bugprone-empty-catch) dtor must not throw
  }
}

void TaskGroup::run(Task task) {
  const std::size_t idx = submitted_++;
  waited_ = false;
  if (pool_.worker_count() == 0) {
    // Serial fallback: execute now, on this thread, in submission order.
    // Errors are still deferred to wait() so both modes surface failures
    // at the same point with the same (first-submitted) exception.
    inline_counter().add(1);
    try {
      task();
    } catch (...) {
      // Uncontended here (no workers exist), but errors is guarded: the
      // same TaskGroup may later run with workers after a pool rebuild.
      MutexLock lk(st_->m);
      st_->errors.emplace_back(idx, std::current_exception());
    }
    return;
  }
  {
    MutexLock lk(st_->m);
    ++st_->pending;
  }
  auto st = st_;
  pool_.submit([st, idx, task = std::move(task)]() mutable {
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    MutexLock lk(st->m);
    if (err) st->errors.emplace_back(idx, err);
    if (--st->pending == 0) st->cv.notify_all();
  });
}

void TaskGroup::wait() {
  waited_ = true;
  for (;;) {
    {
      MutexLock lk(st_->m);
      if (st_->pending == 0) break;
    }
    // Help instead of blocking: the queued task we pick up may well be one
    // of our own. Never run tasks while holding st_->m (their completion
    // handler locks it).
    if (pool_.try_run_one()) continue;
    MutexLock lk(st_->m);
    if (st_->pending == 0) break;
    st_->cv.wait(st_->m);
  }
  // pending reached 0, so no task can still append — but errors stays
  // guarded and we extract under the lock rather than carve an exception
  // into the annotation contract.
  std::exception_ptr err;
  {
    MutexLock lk(st_->m);
    if (st_->errors.empty()) return;
    const auto it = std::min_element(
        st_->errors.begin(), st_->errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    err = it->second;
    st_->errors.clear();
  }
  std::rethrow_exception(err);
}

}  // namespace g6::exec
