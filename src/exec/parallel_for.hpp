#pragma once
// parallel_for with deterministic static partitioning.
//
// The range [begin, end) is split into at most `threads` contiguous
// chunks of (near-)equal size; each chunk runs as one pool task and the
// caller helps until all are done. The partition is a pure function of
// (range, options, pool parallelism) — which chunk a given index lands in
// never depends on runtime timing. Determinism of the *results* is the
// call site's obligation: bodies must write disjoint outputs (the repo
// convention; see docs/EXECUTION.md), so any thread count — including the
// inline serial fallback — produces bit-identical data.

#include <algorithm>
#include <cstddef>

#include "exec/thread_pool.hpp"
#include "util/check.hpp"

namespace g6::exec {

struct ParallelForOptions {
  /// Upper bound on chunks: 0 = pool parallelism (workers + caller),
  /// 1 = force serial inline execution.
  unsigned threads = 0;
  /// Minimum iterations per chunk — below this, splitting costs more than
  /// it buys (task + wakeup overhead vs. the body's work).
  std::size_t grain = 1;
};

/// body(chunk_begin, chunk_end) over [begin, end).
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  ParallelForOptions opt = {},
                  ThreadPool& pool = ThreadPool::global()) {
  G6_REQUIRE(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  const std::size_t grain = std::max<std::size_t>(opt.grain, 1);
  const std::size_t width =
      opt.threads != 0 ? opt.threads : pool.parallelism();
  const std::size_t parts =
      std::min<std::size_t>(width, (n + grain - 1) / grain);
  if (parts <= 1 || pool.worker_count() == 0) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;
  TaskGroup group(pool);
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t b = begin + p * chunk;
    const std::size_t e = std::min(end, b + chunk);
    if (b >= e) break;
    group.run([&body, b, e] { body(b, e); });
  }
  group.wait();
}

}  // namespace g6::exec
