#pragma once
// A copyable relaxed-order atomic counter for performance tallies bumped
// from concurrent tasks. Addition is commutative and associative on
// integers, so the final value is independent of task interleaving — the
// counter is deterministic even though the increments race in time. Used
// for the chip lifetime counters, which vector-of-Chip storage requires
// to stay copyable (a bare std::atomic member would delete the copies).

#include <atomic>
#include <cstdint>

namespace g6::exec {

class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& o)
      : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

}  // namespace g6::exec
