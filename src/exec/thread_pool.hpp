#pragma once
// Shared execution runtime: a work-stealing thread pool plus a TaskGroup
// fork/join primitive (parallel_for.hpp adds deterministic static
// partitioning on top). Every layer that needs concurrency — the GRAPE
// engine's board/chunk tasks, the direct engine's i-loop, the treecode
// traversal, the cluster simulators' per-host blocksteps — rides this one
// pool instead of spawning ad-hoc threads (enforced by g6lint raw-thread).
//
// Determinism contract (docs/EXECUTION.md): the pool schedules
// nondeterministically, but call sites confine that nondeterminism to
// *scheduling* — tasks write disjoint outputs, and reductions are merged
// by the caller in a fixed order after the join. Results are therefore
// bit-identical for any thread count, including the serial fallback
// (G6_EXEC_THREADS=1 spawns no workers; everything runs inline).

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace g6::exec {

using Task = std::function<void()>;

class ThreadPool {
 public:
  /// `threads` is the TOTAL parallelism including the submitting thread:
  /// threads-1 workers are spawned, so 1 means no workers at all — the
  /// serial fallback where submit() degenerates to inline execution.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }
  /// Workers plus the calling thread (which always helps while waiting).
  unsigned parallelism() const { return worker_count() + 1; }

  /// Enqueue a task. Worker threads push to their own deque (LIFO end, so
  /// nested submissions run soon and stay cache-warm); other threads deal
  /// round-robin. With no workers the task runs inline, right here.
  /// Joining is the caller's job (TaskGroup / ForceTicket).
  void submit(Task task);

  /// Pop and run one queued task on the calling thread (helping/stealing).
  /// Returns false when every queue is empty. Waiters call this in a loop
  /// so a blocked caller still contributes a core.
  bool try_run_one();

  // --- process-wide instance ---------------------------------------------
  /// The shared pool, created lazily with resolve_thread_count(last
  /// set_global_threads value, $G6_EXEC_THREADS, hardware concurrency).
  /// The reference stays valid until the next set_global_threads call.
  static ThreadPool& global();

  /// Reconfigure the global pool; 0 = automatic (env, then hardware).
  /// Destroys the current pool immediately, so no submitted work may be
  /// in flight — call between force evaluations, not during.
  static void set_global_threads(unsigned threads);

  /// Resolution rule, exposed for tests: a nonzero `requested` wins, else
  /// a parsable `env` value in [1, 4096], else `hardware` (min 1).
  static unsigned resolve_thread_count(unsigned requested, const char* env,
                                       unsigned hardware);

 private:
  struct Queue {
    Mutex m;
    std::deque<Task> q G6_GUARDED_BY(m);
  };

  void worker_main(unsigned idx);
  bool pop_task(Task& out);

  std::vector<std::unique_ptr<Queue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  Mutex sleep_m_;
  CondVar sleep_cv_;
  bool stop_ G6_GUARDED_BY(sleep_m_) = false;
  // Sleep hint only; the task handoff itself is under the queue mutexes.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> rr_{0};  // round-robin cursor, external submits
};

/// Fork/join over an existing pool. run() submits (or executes inline when
/// the pool has no workers); wait() helps the pool until every task of
/// this group has finished, then rethrows the first captured exception in
/// *submission* order — a deterministic failure surface regardless of
/// which task happened to fail first on the wall clock.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::global());
  /// Waits if wait() was never called; any task exception is swallowed
  /// here (destructors must not throw) — call wait() to observe errors.
  ~TaskGroup();
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(Task task);
  void wait();

 private:
  struct State {
    Mutex m;
    CondVar cv;
    std::size_t pending G6_GUARDED_BY(m) = 0;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors
        G6_GUARDED_BY(m);
  };
  ThreadPool& pool_;
  std::shared_ptr<State> st_;
  std::size_t submitted_ = 0;
  bool waited_ = false;
};

}  // namespace g6::exec
