#pragma once
// Small statistics toolkit used by the performance-model calibration:
// running moments, percentiles, and least-squares fits (linear and
// power-law via log-log).

#include <cstddef>
#include <span>
#include <vector>

namespace g6 {

/// Streaming mean / variance / min / max (Welford).
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// p-th percentile (0..100) by linear interpolation; copies and sorts.
double percentile(std::span<const double> xs, double p);

/// Result of an ordinary least-squares line fit y = a + b*x.
struct LinearFit {
  double intercept = 0.0;  ///< a
  double slope = 0.0;      ///< b
  double r2 = 0.0;         ///< coefficient of determination
};

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Power law y = c * x^p fitted in log-log space. Requires positive data.
struct PowerLawFit {
  double coefficient = 0.0;  ///< c
  double exponent = 0.0;     ///< p
  double r2 = 0.0;
  double evaluate(double x) const;
};

PowerLawFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_center(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace g6
