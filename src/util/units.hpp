#pragma once
// Unit conventions and accounting constants.
//
// Dynamics uses the standard ("Heggie") N-body units [Heggie & Mathieu
// 1986]: G = 1, total mass M = 1, total energy E = -1/4, so the virial
// radius is 1 and the crossing time is 2*sqrt(2).
//
// Performance accounting follows the paper's Gordon-Bell convention:
// 38 floating-point operations per pairwise force and 19 more for its time
// derivative, i.e. 57 flops per pipeline interaction (Sec 4, Eq 9).

namespace g6::units {

inline constexpr double kGravity = 1.0;       ///< G in Heggie units.
inline constexpr double kTotalMass = 1.0;     ///< M in Heggie units.
inline constexpr double kTotalEnergy = -0.25; ///< E in Heggie units.

/// Crossing time 2*sqrt(2) in Heggie units.
inline constexpr double kCrossingTime = 2.82842712474619;

/// Flop accounting: force-only interaction (Warren et al. convention).
inline constexpr double kFlopsPerForce = 38.0;
/// Additional flops for the jerk (time derivative of the force).
inline constexpr double kFlopsPerJerk = 19.0;
/// Flops per GRAPE-6 pipeline interaction (force + jerk), Eq (9).
inline constexpr double kFlopsPerInteraction = kFlopsPerForce + kFlopsPerJerk;

}  // namespace g6::units
