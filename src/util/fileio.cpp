#include "util/fileio.hpp"

#include <cstdio>
#include <fstream>

#include "util/check.hpp"

namespace g6 {

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  G6_REQUIRE_MSG(!path.empty(), "write_file_atomic: empty path");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::out | std::ios::trunc);
    if (!os) throw IoError("cannot open " + tmp + " for writing");
    try {
      writer(os);
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      throw IoError("write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("rename failed: " + tmp + " -> " + path);
  }
}

}  // namespace g6
