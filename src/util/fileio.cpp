#include "util/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace g6 {

namespace {

[[noreturn]] void throw_errno(const std::string& stage,
                              const std::string& path) {
  throw IoError(stage + " failed for " + path + ": " +
                std::strerror(errno));
}

/// write(2) the whole buffer, retrying on short writes and EINTR.
void write_all(int fd, const char* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

/// fsync the directory containing `path` so the rename itself is durable.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("open(dir)", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("fsync(dir)", dir);
}

}  // namespace

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  G6_REQUIRE_MSG(!path.empty(), "write_file_atomic: empty path");
  const std::string tmp = path + ".tmp";
  {
    // g6lint: allow-next-line(durable-writes) -- this IS the implementation
    std::ofstream os(tmp, std::ios::out | std::ios::trunc);
    if (!os) throw IoError("cannot open " + tmp + " for writing");
    try {
      writer(os);
    } catch (...) {
      os.close();
      std::remove(tmp.c_str());
      throw;
    }
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      throw IoError("write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("rename failed: " + tmp + " -> " + path);
  }
}

void write_file_atomic_durable(
    const std::string& path,
    const std::function<void(std::ostream&)>& writer) {
  G6_REQUIRE_MSG(!path.empty(), "write_file_atomic_durable: empty path");
  std::ostringstream content;
  writer(content);
  if (!content) throw IoError("serialization failed for " + path);
  const std::string body = content.str();

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", tmp);
  try {
    write_all(fd, body.data(), body.size(), tmp);
    if (::fsync(fd) != 0) throw_errno("fsync", tmp);
  } catch (...) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw_errno("close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("rename failed: " + tmp + " -> " + path);
  }
  fsync_parent_dir(path);
}

AppendLog::AppendLog(const std::string& path, bool truncate) : path_(path) {
  G6_REQUIRE_MSG(!path.empty(), "AppendLog: empty path");
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throw_errno("open", path);
  // Make the (possibly fresh) file itself durable before the first
  // append: a journal that vanishes with its directory entry on crash
  // would defeat the write-ahead contract.
  fsync_parent_dir(path);
}

AppendLog::~AppendLog() { close(); }

AppendLog::AppendLog(AppendLog&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

AppendLog& AppendLog::operator=(AppendLog&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void AppendLog::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void AppendLog::append(std::string_view line) {
  G6_REQUIRE_MSG(is_open(), "AppendLog::append on a closed log");
  G6_REQUIRE_MSG(line.find('\n') == std::string_view::npos,
                 "AppendLog records are single lines");
  std::string rec;
  rec.reserve(line.size() + 1);
  rec.append(line);
  rec.push_back('\n');
  // One write() call per record: POSIX O_APPEND writes are atomic with
  // respect to concurrent appenders, and a crash tears at most this
  // record's tail, never an earlier one.
  write_all(fd_, rec.data(), rec.size(), path_);
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

}  // namespace g6
