#pragma once
// Minimal --key=value command-line parser for bench/example binaries.
// No external dependencies; unknown flags are an error so typos surface.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace g6 {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declare an option with a default; returns its value. Declarations
  /// double as the help text source.
  std::int64_t get_int(const std::string& key, std::int64_t def,
                       const std::string& help = "");
  double get_double(const std::string& key, double def, const std::string& help = "");
  std::string get_string(const std::string& key, const std::string& def,
                         const std::string& help = "");
  bool get_bool(const std::string& key, bool def, const std::string& help = "");

  /// Call after all declarations: errors out on unknown flags and handles
  /// --help. Returns true if the program should exit (help printed).
  bool finish();

  const std::string& program() const { return program_; }

 private:
  struct Decl {
    std::string key;
    std::string def;
    std::string help;
  };
  std::string lookup(const std::string& key, const std::string& def,
                     const std::string& help);

  std::string program_;
  std::map<std::string, std::string> args_;
  std::map<std::string, bool> used_;
  std::vector<Decl> decls_;
  bool want_help_ = false;
};

}  // namespace g6
