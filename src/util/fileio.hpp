#pragma once
// Crash-safe file output: write-then-rename.
//
// Every durable artifact the toolchain produces (snapshots, metrics JSON,
// trace JSON, calibration caches, checkpoints) goes through
// write_file_atomic so a crash — including one induced by the fault
// subsystem — can never leave a truncated or half-written file behind:
// readers see either the previous complete version or the new complete
// version. Stream errors are checked after every stage and reported as
// IoError instead of being silently swallowed.

#include <functional>
#include <ostream>
#include <stdexcept>
#include <string>

namespace g6 {

/// A file operation failed (open, write, flush, or rename). Carries the
/// path and the failing stage in the message.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write `path` atomically: `writer` streams the full content into a
/// sibling temporary file, which is then renamed over `path` (atomic on
/// POSIX for same-directory renames). On any failure the temporary is
/// removed and IoError is thrown; `path` is left untouched.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace g6
