#pragma once
// Crash-safe file output: write-then-rename, durable (fsync'd) variants,
// and an append-only log for write-ahead journaling.
//
// Every durable artifact the toolchain produces (snapshots, metrics JSON,
// trace JSON, calibration caches, checkpoints, serve journals) goes
// through this header — never a bare std::ofstream (g6lint
// `durable-writes`) — so a crash, including one induced by the fault
// subsystem or a kill -9 in the recovery tests, can never leave a
// truncated or half-written file behind: readers see either the previous
// complete version or the new complete version. Stream errors are checked
// after every stage and reported as IoError instead of being silently
// swallowed.
//
// Three durability grades:
//
//   write_file_atomic          atomic visibility (write-then-rename); the
//                              content may still sit in the page cache
//                              when the process dies. Right for exports
//                              that are re-creatable (metrics, traces).
//   write_file_atomic_durable  atomic AND fsync'd (file before rename,
//                              directory after), so the new version
//                              survives power loss. Right for checkpoints.
//   AppendLog                  append-only records, each append written
//                              then fsync'd before returning — the
//                              write-ahead contract of the serve journal:
//                              once append() returns, the record survives
//                              any crash; a torn write can only be the
//                              final record.

#include <functional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace g6 {

/// A file operation failed (open, write, flush, fsync, or rename).
/// Carries the path and the failing stage in the message.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Write `path` atomically: `writer` streams the full content into a
/// sibling temporary file, which is then renamed over `path` (atomic on
/// POSIX for same-directory renames). On any failure the temporary is
/// removed and IoError is thrown; `path` is left untouched.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// write_file_atomic plus durability: the temporary is fsync'd before the
/// rename and the containing directory after it, so once this returns the
/// new version survives a crash or power loss. Use for state that a
/// recovery path will depend on (checkpoints); plain write_file_atomic is
/// enough for re-creatable exports.
void write_file_atomic_durable(
    const std::string& path,
    const std::function<void(std::ostream&)>& writer);

/// Append-only log with per-append durability: each append(line) writes
/// `line` plus a trailing newline and fsyncs before returning. This is
/// the primitive under the serve write-ahead journal — a record is
/// *logged* only when append() has returned, and a crash mid-append can
/// tear at most the final line (readers must tolerate a trailing
/// fragment, and nothing else).
class AppendLog {
 public:
  AppendLog() = default;
  /// Open `path` for appending; `truncate` starts a fresh log. Throws
  /// IoError when the file cannot be opened.
  AppendLog(const std::string& path, bool truncate);
  ~AppendLog();
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;
  AppendLog(AppendLog&& other) noexcept;
  AppendLog& operator=(AppendLog&& other) noexcept;

  /// Durably append one record (`line` must not contain '\n'; a newline
  /// is added). Throws IoError on write or fsync failure.
  void append(std::string_view line);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace g6
