#include "util/vec3.hpp"

#include <ostream>

namespace g6 {

std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace g6
