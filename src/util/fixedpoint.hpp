#pragma once
// Fixed-point and block floating-point arithmetic for the GRAPE-6
// emulator.
//
// Two hardware mechanisms live here:
//
//  * FixedPointCodec — the 64-bit fixed-point coordinate format. Particle
//    positions are sent to the hardware as 64-bit integers scaled so that a
//    software-chosen coordinate range maps onto the full word. Position
//    differences x_j - x_i are then exact in hardware.
//
//  * BlockFloatAccumulator — the block floating-point partial-force format
//    (paper Sec 3.4). The exponent of the result is fixed *before* the
//    calculation; every addend is shifted onto that grid (one rounding) and
//    then accumulated in exact 64-bit integer arithmetic. Summation is
//    therefore associative and commutative: the result is bit-identical
//    regardless of how many chips/boards the sum is split across. If the
//    chosen exponent is too small the accumulator raises an overflow flag
//    and the engine retries with a larger exponent — the "repeat the force
//    calculation a few times until we have a good guess" behaviour the
//    paper describes.

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace g6 {

/// Encode/decode doubles to the 64-bit fixed-point coordinate word.
///
/// Coordinates in (-range, +range) map to the full signed 64-bit span with
/// two guard bits of headroom so that differences of in-range values never
/// wrap.
class FixedPointCodec {
 public:
  explicit FixedPointCodec(double range) : range_(range) {
    G6_REQUIRE_MSG(range > 0.0, "coordinate range must be positive");
    scale_ = std::ldexp(1.0, 61) / range;  // 2 guard bits
    inv_scale_ = 1.0 / scale_;
  }

  double range() const { return range_; }

  /// Spacing of the representable grid.
  double resolution() const { return inv_scale_; }

  std::int64_t encode(double x) const {
    const double s = x * scale_;
    G6_REQUIRE_MSG(std::fabs(s) < std::ldexp(1.0, 62),
                   "coordinate outside fixed-point range");
    return static_cast<std::int64_t>(std::llrint(s));
  }

  double decode(std::int64_t q) const { return static_cast<double>(q) * inv_scale_; }

  /// Round-trip a double through the hardware grid.
  double quantize(double x) const { return decode(encode(x)); }

 private:
  double range_;
  double scale_;
  double inv_scale_;
};

/// Block floating-point accumulator: value = mant * 2^(block_exp - kFracBits).
///
/// `block_exp` is the binary exponent of the full-scale value: the
/// accumulator can hold magnitudes up to ~2^(block_exp + kHeadroomBits)
/// before overflowing, with kFracBits fraction bits of resolution below
/// 2^block_exp.
class BlockFloatAccumulator {
 public:
  /// Fraction bits kept below the full-scale exponent.
  static constexpr int kFracBits = 56;
  /// Headroom above full scale before the 64-bit word overflows.
  static constexpr int kHeadroomBits = 62 - kFracBits;

  BlockFloatAccumulator() = default;
  explicit BlockFloatAccumulator(int block_exp) { reset(block_exp); }

  /// Clear the sum and (re)fix the block exponent.
  void reset(int block_exp) {
    block_exp_ = block_exp;
    mant_ = 0;
    overflow_ = false;
    // Cache the grid scale 2^(kFracBits - block_exp) as a double so add()
    // is one multiply instead of a per-call ldexp. A power-of-two multiply
    // is exact (identical to ldexp) whenever the scale itself is a normal
    // double; for the wild exponents outside that window add() falls back
    // to ldexp, keeping the two formulations bit-identical everywhere.
    const int k = kFracBits - block_exp;
    scale_exact_ = k >= -1021 && k <= 1023;
    scale_ = scale_exact_ ? std::ldexp(1.0, k) : 0.0;
  }

  int block_exp() const { return block_exp_; }
  bool overflow() const { return overflow_; }
  std::int64_t mantissa() const { return mant_; }

  /// Fault-injection hooks (src/fault): mutate the mantissa word in
  /// place, modelling a bit upset in the accumulator register (xor) or a
  /// pipeline whose output register is stuck at a constant (set). The
  /// production dataflow never calls these; only FaultInjector does.
  void fault_xor_mantissa(std::int64_t mask) { mant_ ^= mask; }
  void fault_set_mantissa(std::int64_t mant) { mant_ = mant; }

  /// Add a value, rounding it once onto the block grid. Sets the overflow
  /// flag if either the addend or the running sum exceeds the headroom.
  void add(double x) {
    if (x == 0.0) return;
    const double scaled =
        scale_exact_ ? x * scale_ : std::ldexp(x, kFracBits - block_exp_);
    if (!(std::fabs(scaled) < 0x1p62)) {
      overflow_ = true;
      return;
    }
    const std::int64_t q = static_cast<std::int64_t>(std::llrint(scaled));
    std::int64_t sum = 0;
    if (__builtin_add_overflow(mant_, q, &sum)) {
      overflow_ = true;
      return;
    }
    mant_ = sum;
  }

  /// Merge another accumulator with the same block exponent (the
  /// board-level FPGA reduction tree). Exact integer addition.
  void merge(const BlockFloatAccumulator& other) {
    G6_REQUIRE_MSG(other.block_exp_ == block_exp_,
                   "merging accumulators with different block exponents");
    overflow_ = overflow_ || other.overflow_;
    std::int64_t sum = 0;
    if (__builtin_add_overflow(mant_, other.mant_, &sum)) {
      overflow_ = true;
      return;
    }
    mant_ = sum;
  }

  /// Decoded value.
  double value() const {
    return std::ldexp(static_cast<double>(mant_), block_exp_ - kFracBits);
  }

 private:
  std::int64_t mant_ = 0;
  int block_exp_ = 0;
  bool overflow_ = false;
  double scale_ = 0x1p56;  ///< 2^(kFracBits - block_exp_) for the defaults
  bool scale_exact_ = true;
  static_assert(kFracBits == 56, "scale_ default initializer must be 2^kFracBits");
};

/// Choose a block exponent such that `magnitude_estimate` sits comfortably
/// inside the accumulator headroom. `margin_bits` extra bits absorb
/// step-to-step growth of the force (the engine reuses the previous step's
/// exponent, so a small margin keeps retries rare).
inline int choose_block_exponent(double magnitude_estimate, int margin_bits = 2) {
  if (magnitude_estimate <= 0.0 || !std::isfinite(magnitude_estimate)) return 0;
  int e = 0;
  (void)std::frexp(magnitude_estimate, &e);
  return e + margin_bits;
}

}  // namespace g6
