#pragma once
// Lightweight precondition / invariant checking.
//
// G6_REQUIRE is always on (API preconditions); G6_ASSERT compiles out in
// NDEBUG builds (internal invariants on hot paths).

#include <sstream>
#include <stdexcept>
#include <string>

namespace g6 {

/// Thrown when a G6_REQUIRE precondition fails.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

}  // namespace g6

#define G6_REQUIRE(expr)                                              \
  do {                                                                \
    if (!(expr)) ::g6::fail_require(#expr, __FILE__, __LINE__, {});   \
  } while (0)

#define G6_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) ::g6::fail_require(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

#ifdef NDEBUG
#define G6_ASSERT(expr) ((void)0)
#else
#define G6_ASSERT(expr) G6_REQUIRE(expr)
#endif
