#pragma once
// Annotated mutex wrapper for Clang Thread Safety Analysis. libstdc++'s
// std::mutex carries no capability attribute, so members guarded by one
// are invisible to -Wthread-safety. g6::Mutex is a zero-cost shim over
// std::mutex declared as a capability; g6::MutexLock is the matching
// RAII guard; g6::CondVar wraps std::condition_variable_any (the _any
// variant, because Mutex is BasicLockable but is not std::mutex).
//
// The method bodies themselves are G6_NO_THREAD_SAFETY_ANALYSIS: they
// implement the capability, so the analysis cannot see through them —
// it trusts the ACQUIRE/RELEASE declarations instead, exactly as it
// does for abseil's absl::Mutex.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace g6 {

/// std::mutex with capability attributes. Same size, same cost.
class G6_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() G6_ACQUIRE() { m_.lock(); }
  void unlock() G6_RELEASE() { m_.unlock(); }
  bool try_lock() G6_THREAD_ANNOTATION(try_acquire_capability(true)) {
    return m_.try_lock();
  }

  /// The wrapped mutex, for interop that the analysis cannot follow.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// RAII guard over g6::Mutex (the annotated std::lock_guard).
class G6_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) G6_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() G6_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with g6::Mutex. wait() REQUIRES the mutex:
/// the caller holds it across the call, the wait releases and reacquires
/// it internally (which the analysis does not model — the capability is
/// held again by the time wait returns, so the annotation is sound).
class CondVar {
 public:
  void wait(Mutex& mu) G6_REQUIRES(mu) G6_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  template <class Pred>
  void wait(Mutex& mu, Pred pred) G6_REQUIRES(mu)
      G6_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace g6
