#pragma once
// Reduced-precision floating-point arithmetic emulation.
//
// The GRAPE-6 pipeline computes in hardware number formats much narrower
// than IEEE double. We model a hardware format as (sign, exponent range,
// fraction bits) and emulate each arithmetic unit as "compute in double,
// then round correctly to the target format" — i.e. every op is correctly
// rounded in the emulated format, which matches a well-designed hardware
// unit to within its own rounding spec.
//
// Values are carried around as plain doubles that happen to be exactly
// representable in the narrow format; FloatFormat::quantize() is the only
// place rounding happens.

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

#include "util/check.hpp"

namespace g6 {

/// A hardware floating-point format: 1 sign bit, `frac_bits` explicit
/// fraction bits (plus the implicit leading one), and a biased exponent
/// covering binary exponents [exp_min, exp_max] for the frexp convention
/// (value = m * 2^e with m in [0.5, 1)).
class FloatFormat {
 public:
  constexpr FloatFormat(int frac_bits, int exp_min, int exp_max)
      : frac_bits_(frac_bits), exp_min_(exp_min), exp_max_(exp_max) {}

  int frac_bits() const { return frac_bits_; }
  int exp_min() const { return exp_min_; }
  int exp_max() const { return exp_max_; }

  /// Largest finite magnitude of the format.
  double max_value() const {
    const double m = 1.0 - std::ldexp(1.0, -(frac_bits_ + 1));
    return std::ldexp(m, exp_max_);
  }

  /// Smallest positive normal magnitude (we flush subnormals to zero, as
  /// the hardware does).
  double min_normal() const { return std::ldexp(0.5, exp_min_); }

  /// Round-to-nearest-even into this format. Underflow flushes to zero,
  /// overflow saturates to +-max_value() (the hardware clamps rather than
  /// producing infinities).
  ///
  /// Implemented as branch-light bit manipulation on the IEEE-754 word so
  /// the per-op rounding of the emulated pipeline costs integer adds, not
  /// libm calls, and flat interaction loops stay autovectorizable. The
  /// result is bit-identical to quantize_ref() below — the frexp-based
  /// reference formulation — which tests/grape/pipeline_crosscheck_test
  /// verifies exhaustively over structured and random bit patterns.
  double quantize(double x) const {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
    const std::uint64_t mag = bits & 0x7fffffffffffffffULL;
    if (mag == 0) return x;                       // +-0 passes through
    if (mag >= 0x7ff0000000000000ULL) {           // inf / NaN
      if (mag > 0x7ff0000000000000ULL) return x;  // NaN passes through
      return std::copysign(max_value(), x);
    }
    if (mag < 0x0010000000000000ULL) {
      // Subnormal double: below 2^-1022, outside the fast path's normal-
      // number exponent algebra. Never produced by the pipeline formats
      // (their min_normal is far larger); defer to the reference.
      return quantize_ref(x);
    }
    if (frac_bits_ < 52) {
      // Round-to-nearest-even at fraction bit `frac_bits_`: add half an
      // ULP minus one when the kept LSB is even, so ties snap to even.
      // A mantissa carry propagates into the exponent field, which is
      // exactly the "rounding carried into the next binade" case.
      const int shift = 52 - frac_bits_;
      bits += (std::uint64_t{1} << (shift - 1)) - (~(bits >> shift) & 1U);
      bits &= ~((std::uint64_t{1} << shift) - 1);
    }
    // frexp convention: value = m * 2^e with |m| in [0.5, 1), so
    // e = unbiased exponent + 1. An exponent field that carried to 0x7ff
    // yields e = 1025 > exp_max for every representable format.
    const int e = static_cast<int>((bits >> 52) & 0x7ffU) - 1022;
    if (e < exp_min_) return std::copysign(0.0, x);
    if (e > exp_max_) return std::copysign(max_value(), x);
    return std::bit_cast<double>(bits);
  }

  /// Reference formulation of quantize(): compute in double, round with
  /// libm. Kept as the independently-derived oracle the fast path is
  /// checked against; not used on any hot path.
  double quantize_ref(double x) const {
    if (x == 0.0 || std::isnan(x)) return x;
    if (std::isinf(x)) return std::copysign(max_value(), x);
    int e = 0;
    double m = std::frexp(x, &e);  // |m| in [0.5, 1)
    const double scale = std::ldexp(1.0, frac_bits_ + 1);
    double r = std::nearbyint(m * scale) / scale;
    if (std::fabs(r) >= 1.0) {  // rounding carried into the next binade
      r *= 0.5;
      ++e;
    }
    if (e < exp_min_) return std::copysign(0.0, x);
    if (e > exp_max_) return std::copysign(max_value(), x);
    return std::ldexp(r, e);
  }

  /// True when x is exactly representable (used in tests/assertions).
  bool representable(double x) const { return quantize(x) == x; }

  // --- correctly-rounded emulated arithmetic units -----------------------
  double add(double a, double b) const { return quantize(a + b); }
  double sub(double a, double b) const { return quantize(a - b); }
  double mul(double a, double b) const { return quantize(a * b); }
  double div(double a, double b) const { return quantize(a / b); }
  double sqrt(double a) const { return quantize(std::sqrt(a)); }

  /// Reciprocal square root. GRAPE pipelines implement this as a table
  /// lookup plus Newton iteration with final accuracy ~1 ulp of the short
  /// format; correctly-rounded is the idealization of that unit.
  double rsqrt(double a) const {
    G6_REQUIRE_MSG(a >= 0.0, "rsqrt of negative operand");
    if (a == 0.0) return max_value();  // hardware clamps 1/sqrt(0)
    return quantize(1.0 / std::sqrt(a));
  }

  std::string describe() const;

  friend bool operator==(const FloatFormat& a, const FloatFormat& b) {
    return a.frac_bits_ == b.frac_bits_ && a.exp_min_ == b.exp_min_ &&
           a.exp_max_ == b.exp_max_;
  }

 private:
  int frac_bits_;
  int exp_min_;
  int exp_max_;
};

namespace formats {

/// Main pipeline arithmetic word (single-precision-like, as in the
/// GRAPE-6 force pipeline datapath).
constexpr FloatFormat pipeline() { return {24, -126, 127}; }

/// Velocity / jerk input word (32-bit float).
constexpr FloatFormat velocity() { return {24, -126, 127}; }

/// On-chip predictor pipeline word — slightly narrower than the force
/// datapath; the predictor only needs enough precision for Dt <= dt_j.
constexpr FloatFormat predictor() { return {20, -126, 127}; }

/// IEEE double (identity quantization for practical purposes); used to run
/// the same pipeline code at full precision for A/B accuracy studies.
constexpr FloatFormat ieee_double() { return {52, -1022, 1023}; }

}  // namespace formats

}  // namespace g6
