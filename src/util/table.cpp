#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/check.hpp"

namespace g6 {

TablePrinter::TablePrinter(std::ostream& os, std::vector<std::string> columns)
    : os_(os), columns_(std::move(columns)) {
  widths_.reserve(columns_.size());
  for (const auto& c : columns_) widths_.push_back(std::max<std::size_t>(c.size(), 10));
}

void TablePrinter::mirror_csv(const std::string& path) {
  csv_.open(path);
  csv_open_ = csv_.is_open();
  if (csv_open_) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i) csv_ << ',';
      csv_ << columns_[i];
    }
    csv_ << '\n';
  }
}

void TablePrinter::print_header() {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os_ << (i ? "  " : "");
    os_.width(static_cast<std::streamsize>(widths_[i]));
    os_ << columns_[i];
  }
  os_ << '\n';
  std::size_t total = 0;
  for (auto w : widths_) total += w + 2;
  os_ << std::string(total > 2 ? total - 2 : total, '-') << '\n';
}

void TablePrinter::print_row(const std::vector<std::string>& cells) {
  G6_REQUIRE(cells.size() == columns_.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os_ << (i ? "  " : "");
    os_.width(static_cast<std::streamsize>(widths_[i]));
    os_ << cells[i];
  }
  os_ << '\n';
  if (csv_open_) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) csv_ << ',';
      csv_ << cells[i];
    }
    csv_ << '\n';
    csv_.flush();
  }
}

std::string TablePrinter::num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string TablePrinter::num(long long v) { return std::to_string(v); }

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace g6
