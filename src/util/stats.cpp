#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace g6 {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double percentile(std::span<const double> xs, double p) {
  G6_REQUIRE(!xs.empty());
  G6_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  G6_REQUIRE(xs.size() == ys.size());
  G6_REQUIRE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  G6_REQUIRE_MSG(denom != 0.0, "degenerate x data in linear fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double PowerLawFit::evaluate(double x) const {
  return coefficient * std::pow(x, exponent);
}

PowerLawFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  G6_REQUIRE(xs.size() == ys.size());
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    G6_REQUIRE_MSG(xs[i] > 0.0 && ys[i] > 0.0, "power-law fit needs positive data");
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerLawFit fit;
  fit.coefficient = std::exp(lin.intercept);
  fit.exponent = lin.slope;
  fit.r2 = lin.r2;
  return fit;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  G6_REQUIRE(hi > lo);
  G6_REQUIRE(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

}  // namespace g6
