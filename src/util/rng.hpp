#pragma once
// Deterministic pseudo-random number generation (xoshiro256++).
//
// We avoid std::mt19937 so that streams are cheap to fork per simulated
// host and bit-identical across standard library implementations —
// reproducibility of initial conditions matters for the paper's
// "same result on machines of different sizes" validation story.

#include <cstdint>

#include "util/vec3.hpp"

namespace g6 {

/// xoshiro256++ generator seeded through splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seed the full state from a single 64-bit value.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
    have_gauss_ = false;
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal deviate (Marsaglia polar method).
  double gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * f;
    have_gauss_ = true;
    return u * f;
  }

  /// Point uniformly distributed on the unit sphere surface.
  Vec3 unit_vector() {
    // Marsaglia (1972): rejection in the unit disc.
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0);
    const double f = 2.0 * std::sqrt(1.0 - s);
    return {u * f, v * f, 1.0 - 2.0 * s};
  }

  /// Independent child stream (for per-host forking).
  Rng fork() { return Rng(next_u64()); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace g6
