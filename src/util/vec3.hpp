#pragma once
// Small fixed-size 3-vector used throughout the library.
//
// All host-side physics is done in double precision; the GRAPE emulator
// quantizes components through util/softfloat.hpp where hardware formats
// apply.

#include <cmath>
#include <iosfwd>

namespace g6 {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}

  constexpr double& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3& operator/=(double s) { return *this *= (1.0 / s); }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
};

/// Dot product.
constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

/// Cross product.
constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

/// Squared Euclidean norm.
constexpr double norm2(const Vec3& a) { return dot(a, a); }

/// Euclidean norm.
inline double norm(const Vec3& a) { return std::sqrt(norm2(a)); }

std::ostream& operator<<(std::ostream& os, const Vec3& v);

}  // namespace g6
