#include "util/softfloat.hpp"

#include <sstream>

namespace g6 {

std::string FloatFormat::describe() const {
  std::ostringstream os;
  os << "float<1," << frac_bits_ << ",e[" << exp_min_ << ',' << exp_max_ << "]>";
  return os.str();
}

}  // namespace g6
