#pragma once
// Typed error taxonomy for the fault subsystem (docs/RELIABILITY.md).
//
// The real GRAPE-6 was operated with flaky pipelines for years: the host
// software distinguished *transient* anomalies (retry the pass, rewrite
// the memory word) from *hard* failures (disable the chip and keep
// running). This header is the software twin of that distinction and is
// intentionally header-only AND bottom-layer (src/util) so every layer —
// the hermite integrator, the grape engine, the parallel drivers, the
// serve scheduler — can throw and catch these types without a link-time
// dependency on g6_fault and without an include edge back up into the
// fault layer (the g6layers DAG would reject one). The types stay in
// namespace g6::fault: they ARE the fault taxonomy; only the file lives
// at the bottom of the layer graph.
//
//   FaultError            root of the taxonomy (is-a std::runtime_error)
//   ├── TransientFault    recoverable by bounded retry; the caller may
//   │   │                 re-issue the operation (possibly after
//   │   │                 resetting cached state)
//   │   └── RetryExhausted  a bounded retry loop ran out of attempts;
//   │                       still transient in kind — one level up may
//   │                       retry with a clean slate
//   └── HardFault         not recoverable by retry; requires degradation
//                         (dead chip, lost host) or operator action
//
// Code in src/ must route abnormal termination through this taxonomy (or
// G6_REQUIRE for programmer errors); bare abort()/exit() is banned by the
// g6lint `bare-abort` rule.

#include <stdexcept>
#include <string>

namespace g6::fault {

/// Root of the fault taxonomy.
class FaultError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An anomaly that a bounded retry is expected to clear (bit upset,
/// corrupted transfer, duplicate-pass mismatch).
class TransientFault : public FaultError {
 public:
  using FaultError::FaultError;
};

/// A bounded retry loop exhausted its attempts without the anomaly
/// clearing. Thrown instead of aborting so the integrator (or driver)
/// can recover at a coarser granularity.
class RetryExhausted : public TransientFault {
 public:
  using TransientFault::TransientFault;
};

/// A failure retry cannot clear: dead chip/module/board, unusable
/// configuration. Recovery means degrading (remap onto survivors) or
/// restarting from a checkpoint.
class HardFault : public FaultError {
 public:
  using FaultError::FaultError;
};

}  // namespace g6::fault
