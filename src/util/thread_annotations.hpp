#pragma once
// Clang Thread Safety Analysis attribute macros (no-ops on other
// compilers). Annotating which mutex guards which member turns the
// locking discipline into a compile-time contract: `clang++
// -Wthread-safety` (the `clang-analysis` CMake preset) rejects any read
// or write of a G6_GUARDED_BY member outside its mutex, any call of a
// G6_REQUIRES function without the lock, and double/forgotten
// locks/unlocks. GCC compiles the same code silently — the macros expand
// to nothing — so the annotations cost nothing where they cannot be
// checked.
//
// The analysis only understands types declared as capabilities, so the
// annotated wrappers in util/mutex.hpp (g6::Mutex, g6::MutexLock,
// g6::CondVar) must be used instead of std::mutex wherever a guard is
// annotated. See docs/STATIC_ANALYSIS.md ("Thread safety annotations").

#if defined(__clang__) && (!defined(SWIG))
#define G6_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define G6_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a type to be a lockable capability ("mutex" names it in
/// diagnostics).
#define G6_CAPABILITY(x) G6_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define G6_SCOPED_CAPABILITY G6_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be touched while holding `x`.
#define G6_GUARDED_BY(x) G6_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is protected by `x`.
#define G6_PT_GUARDED_BY(x) G6_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and it stays
/// held on exit).
#define G6_REQUIRES(...) \
  G6_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the capability in shared (reader) mode.
#define G6_REQUIRES_SHARED(...) \
  G6_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (must not be held on entry).
#define G6_ACQUIRE(...) G6_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (must be held on entry).
#define G6_RELEASE(...) G6_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard
/// for public entry points of a class that locks internally).
#define G6_EXCLUDES(...) G6_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define G6_ACQUIRED_BEFORE(...) \
  G6_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define G6_ACQUIRED_AFTER(...) \
  G6_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to a capability-guarded object.
#define G6_RETURN_CAPABILITY(x) G6_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed in the
/// annotation language (e.g. conditional locking). Use sparingly and
/// explain why at the use site.
#define G6_NO_THREAD_SAFETY_ANALYSIS \
  G6_THREAD_ANNOTATION(no_thread_safety_analysis)
