#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace g6 {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      want_help_ = true;
      continue;
    }
    if (a.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected positional argument: " + a);
    }
    a = a.substr(2);
    const auto eq = a.find('=');
    if (eq == std::string::npos) {
      args_[a] = "true";  // bare flag
    } else {
      args_[a.substr(0, eq)] = a.substr(eq + 1);
    }
  }
}

std::string Cli::lookup(const std::string& key, const std::string& def,
                        const std::string& help) {
  decls_.push_back({key, def, help});
  auto it = args_.find(key);
  if (it == args_.end()) return def;
  used_[key] = true;
  return it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def,
                          const std::string& help) {
  const std::string v = lookup(key, std::to_string(def), help);
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def, const std::string& help) {
  const std::string v = lookup(key, std::to_string(def), help);
  return std::strtod(v.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& key, const std::string& def,
                            const std::string& help) {
  return lookup(key, def, help);
}

bool Cli::get_bool(const std::string& key, bool def, const std::string& help) {
  const std::string v = lookup(key, def ? "true" : "false", help);
  return v == "true" || v == "1" || v == "yes";
}

bool Cli::finish() {
  if (want_help_) {
    std::printf("usage: %s [--key=value ...]\n", program_.c_str());
    for (const auto& d : decls_) {
      std::printf("  --%-24s (default: %s) %s\n", d.key.c_str(), d.def.c_str(),
                  d.help.c_str());
    }
    return true;
  }
  for (const auto& [key, value] : args_) {
    (void)value;
    if (!used_.count(key)) {
      throw std::runtime_error("unknown flag: --" + key);
    }
  }
  return false;
}

}  // namespace g6
