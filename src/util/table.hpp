#pragma once
// Column-aligned table output for the benchmark harness. Every figure
// reproduction prints the same rows/series the paper plots; TablePrinter
// keeps that output readable and greppable, and can mirror rows to a CSV
// file for plotting.

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

namespace g6 {

class TablePrinter {
 public:
  /// `columns` are header names; widths adapt to headers (min 10 chars).
  TablePrinter(std::ostream& os, std::vector<std::string> columns);

  /// Also append rows to a CSV file (best effort; failures are ignored so
  /// benches keep running on read-only filesystems).
  void mirror_csv(const std::string& path);

  void print_header();

  /// Print one row; `cells` must match the column count.
  void print_row(const std::vector<std::string>& cells);

  /// Convenience: format doubles with %.6g, integers as-is.
  static std::string num(double v);
  static std::string num(long long v);

 private:
  std::ostream& os_;
  std::vector<std::string> columns_;
  std::vector<std::size_t> widths_;
  // g6lint: allow-next-line(durable-writes) -- best-effort CSV mirror of a stdout table; a torn file costs nothing a rerun doesn't fix
  std::ofstream csv_;
  bool csv_open_ = false;
};

/// Print a section banner ("=== Figure 13 ... ===") used by every bench.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace g6
