#pragma once
// Experiment drivers shared by the benchmark harness: one call produces
// one point of a paper figure.

#include <cstddef>
#include <string>
#include <vector>

#include "perf/calibration.hpp"
#include "perf/machine_model.hpp"

namespace g6 {

/// One point of a speed-vs-N curve.
struct SpeedPoint {
  std::size_t n = 0;
  double eps = 0.0;
  double speed_flops = 0.0;       ///< Eq 9 convention: 57 N n_steps
  double time_per_step_s = 0.0;   ///< y-axis of Figs 14/16/18
  double steps_per_second = 0.0;
  MachineModel::TraceResult detail;

  double gflops() const { return speed_flops / 1e9; }
  double tflops() const { return speed_flops / 1e12; }
};

/// Synthesize a schedule with the calibrated statistics at size `n` and
/// replay it through the machine model (the large-N methodology of
/// DESIGN.md Sec 5).
SpeedPoint measure_speed_synthetic(std::size_t n, SofteningLaw law,
                                   const SystemConfig& system,
                                   const TraceScaling& scaling,
                                   double t_span = 1.0, unsigned seed = 1);

/// Replay an actually-measured schedule through the machine model.
SpeedPoint measure_speed_from_trace(const BlockstepTrace& trace, double eps,
                                    const SystemConfig& system);

/// Log-spaced size grid, `per_decade` points per factor of 10, rounded to
/// even values; endpoints included.
std::vector<std::size_t> log_grid(std::size_t lo, std::size_t hi,
                                  std::size_t per_decade = 4);

/// Directory for bench CSV mirrors (created on first use); returns
/// "<dir>/<name>.csv". Controlled by the GRAPE6_BENCH_OUT environment
/// variable, default "bench_out".
std::string bench_csv_path(const std::string& name);

/// Shared calibration-cache location for bench binaries:
/// "<bench-out>/calibration_<law>.txt".
std::string calibration_cache_path(SofteningLaw law);

}  // namespace g6
