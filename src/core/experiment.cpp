#include "core/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace g6 {

SpeedPoint measure_speed_from_trace(const BlockstepTrace& trace, double eps,
                                    const SystemConfig& system) {
  const MachineModel model(system);
  SpeedPoint pt;
  pt.n = trace.n_particles;
  pt.eps = eps;
  pt.detail = model.run_trace(trace);
  pt.steps_per_second = pt.detail.steps_per_second();
  pt.time_per_step_s = pt.detail.time_per_step();
  pt.speed_flops = pt.detail.paper_speed_flops(trace.n_particles);
  return pt;
}

SpeedPoint measure_speed_synthetic(std::size_t n, SofteningLaw law,
                                   const SystemConfig& system,
                                   const TraceScaling& scaling, double t_span,
                                   unsigned seed) {
  Rng rng(seed + static_cast<unsigned>(n));
  const BlockstepTrace trace = scaling.synthesize(n, t_span, rng);
  return measure_speed_from_trace(trace, softening_for(law, n), system);
}

std::vector<std::size_t> log_grid(std::size_t lo, std::size_t hi,
                                  std::size_t per_decade) {
  G6_REQUIRE(lo >= 2 && hi >= lo && per_decade >= 1);
  std::vector<std::size_t> grid;
  const double step = std::pow(10.0, 1.0 / static_cast<double>(per_decade));
  double x = static_cast<double>(lo);
  while (x < static_cast<double>(hi) * 0.999) {
    auto v = static_cast<std::size_t>(std::llround(x / 2.0) * 2);
    if (grid.empty() || v > grid.back()) grid.push_back(v);
    x *= step;
  }
  if (grid.empty() || grid.back() != hi) grid.push_back(hi);
  return grid;
}

namespace {
std::string bench_out_dir() {
  const char* env = std::getenv("GRAPE6_BENCH_OUT");
  std::string dir = env != nullptr ? env : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort
  return dir;
}
}  // namespace

std::string bench_csv_path(const std::string& name) {
  return bench_out_dir() + "/" + name + ".csv";
}

std::string calibration_cache_path(SofteningLaw law) {
  std::string tag;
  switch (law) {
    case SofteningLaw::kConstant:
      tag = "const";
      break;
    case SofteningLaw::kCubeRoot:
      tag = "cbrt";
      break;
    case SofteningLaw::kOverN:
      tag = "overn";
      break;
  }
  return bench_out_dir() + "/calibration_" + tag + ".txt";
}

}  // namespace g6
