#pragma once
// grape6sim — public umbrella header.
//
// A software twin of the GRAPE-6 special-purpose computer for
// gravitational N-body simulation (Makino, Kokubo, Fukushige, Daisaka,
// SC'03). Pull in this header for the whole public API; individual
// subsystem headers remain usable on their own.
//
// Layering (bottom to top):
//   util     — vectors, hardware number formats, RNG, statistics
//   obs      — telemetry: logger, metrics, phase spans, Eq 10 accounting
//   exec     — shared thread pool, fork/join groups, parallel_for
//              (docs/EXECUTION.md: the submit/wait force runtime)
//   nbody    — particles, initial-condition models, diagnostics
//   hermite  — 4th-order Hermite individual-timestep integrator
//   fault    — fault plans/injection, error taxonomy, checkpoint/restart
//   grape    — bit-level GRAPE-6 hardware emulator with virtual timing
//              (+ self-test, scrubbing, degradation; docs/RELIABILITY.md)
//   net      — NIC models and collective-communication costs
//   parallel — virtual multi-host / multi-cluster simulation
//   perf     — performance model, schedule calibration and synthesis
//   tree     — Barnes-Hut treecode baseline
//   serve    — multi-tenant serving layer: admission, board leases,
//              job scheduling over the shared machine (docs/SERVING.md)
//   wire     — remote serving: socket transport, grape6-wire-v1
//              framing/envelopes, streaming server and client
//   core     — experiment drivers used by the benchmark harness

#include "core/experiment.hpp"
#include "exec/parallel_for.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault.hpp"
#include "grape/board.hpp"
#include "grape/chip.hpp"
#include "grape/config.hpp"
#include "grape/engine.hpp"
#include "hw/formats.hpp"
#include "grape/pipeline.hpp"
#include "grape/selftest.hpp"
#include "hermite/ahmad_cohen.hpp"
#include "hermite/direct_engine.hpp"
#include "hermite/force_engine.hpp"
#include "hermite/integrator.hpp"
#include "hermite/scheme.hpp"
#include "hermite/trace.hpp"
#include "nbody/diagnostics.hpp"
#include "nbody/kepler.hpp"
#include "nbody/king.hpp"
#include "nbody/models.hpp"
#include "nbody/particle.hpp"
#include "nbody/snapshot.hpp"
#include "net/clock.hpp"
#include "net/collectives.hpp"
#include "net/nic.hpp"
#include "obs/telemetry.hpp"
#include "parallel/alternatives.hpp"
#include "parallel/host_grid.hpp"
#include "parallel/virtual_cluster.hpp"
#include "perf/calibration.hpp"
#include "perf/host_model.hpp"
#include "perf/machine_model.hpp"
#include "serve/serve.hpp"
#include "tree/collisions.hpp"
#include "tree/leapfrog.hpp"
#include "tree/octree.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "wire/wire.hpp"
