#pragma once
// Public umbrella for the remote-serving wire layer: framing, envelopes,
// transport, server and client (docs/SERVING.md, "Wire protocol").

#include "wire/client.hpp"    // IWYU pragma: export
#include "wire/envelope.hpp"  // IWYU pragma: export
#include "wire/framing.hpp"   // IWYU pragma: export
#include "wire/server.hpp"    // IWYU pragma: export
#include "wire/socket.hpp"    // IWYU pragma: export
