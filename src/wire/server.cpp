#include "wire/server.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <vector>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "util/check.hpp"
#include "wire/envelope.hpp"
#include "wire/framing.hpp"
#include "wire/socket.hpp"

namespace g6::wire {

namespace {

using obs::JsonValue;
using obs::json_escape;

obs::MetricsRegistry& reg() { return obs::MetricsRegistry::global(); }

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

void write_envelope_head(std::ostream& os, const char* kind) {
  os << "{\"schema\":\"" << kWireSchema << "\",\"kind\":\"" << kind << "\"";
}

/// The same per-job key set grape6_serve's report file uses, so a remote
/// report is field-for-field the local one.
void write_job_report(std::ostream& os, const serve::JobReport& r) {
  os << "{\"id\":" << r.id << ",\"name\":\"" << json_escape(r.name)
     << "\",\"priority\":\"" << serve::priority_name(r.priority)
     << "\",\"state\":\"" << serve::job_state_name(r.state)
     << "\",\"reject_reason\":\"" << serve::reject_reason_name(r.reject_reason)
     << "\",\"message\":\"" << json_escape(r.message) << "\",\"n\":" << r.n
     << ",\"boards\":" << r.boards << ",\"boards_now\":" << r.boards_now
     << ",\"resizes\":" << r.resizes << ",\"t_end\":" << num(r.t_end)
     << ",\"t_reached\":" << num(r.t_reached) << ",\"steps\":" << r.steps
     << ",\"blocksteps\":" << r.blocksteps << ",\"quanta\":" << r.quanta
     << ",\"preemptions\":" << r.preemptions
     << ",\"revocations\":" << r.revocations << ",\"requeues\":" << r.requeues
     << ",\"failures\":" << r.failures << ",\"wait_s\":" << num(r.wait_s)
     << ",\"run_s\":" << num(r.run_s)
     << ",\"grape_virtual_s\":" << num(r.grape_virtual_s)
     << ",\"e0\":" << num(r.e0) << ",\"e_final\":" << num(r.e_final)
     << ",\"energy_error\":" << num(r.energy_error()) << "}";
}

}  // namespace

struct WireServer::Impl {
  struct Conn {
    std::uint64_t id = 0;
    Socket sock;
    FrameDecoder decoder;
    std::string outbuf;
    std::size_t out_pos = 0;  ///< flushed prefix of outbuf
    bool subscribed = false;
    bool want_snapshots = false;
    bool all_jobs = false;
    bool closing = false;  ///< flush remaining outbuf, then close
    std::vector<serve::JobId> submitted;
  };

  /// Last observed progress per job, for event diffing after each round.
  struct JobTrack {
    std::uint64_t quanta = 0;
    serve::JobState state = serve::JobState::kQueued;
    std::size_t boards_now = 0;
    std::uint64_t resizes = 0;
    bool terminal_sent = false;
  };

  serve::GrapeService& service;
  ListenSocket listener;
  std::vector<std::unique_ptr<Conn>> conns;
  std::vector<JobTrack> tracks;  ///< index = job id - 1
  WireServerStats stats;
  std::uint64_t next_conn_id = 1;
  bool drain_requested = false;

  Impl(serve::GrapeService& svc, const std::string& listen_endpoint)
      : service(svc), listener(parse_endpoint(listen_endpoint)) {}

  void enqueue(Conn& c, const std::string& payload) {
    c.outbuf += encode_frame(payload);
    ++stats.frames_out;
    reg().counter("wire.frames_out").add();
    reg().counter("wire.bytes_out").add(kFrameHeaderBytes + payload.size());
  }

  bool wants(const Conn& c, serve::JobId job) const {
    if (!c.subscribed) return false;
    if (c.all_jobs) return true;
    return std::find(c.submitted.begin(), c.submitted.end(), job) !=
           c.submitted.end();
  }

  void broadcast(serve::JobId job, const std::string& payload) {
    for (auto& c : conns) {
      if (!c->closing && wants(*c, job)) {
        enqueue(*c, payload);
        ++stats.events;
        reg().counter("wire.events").add();
      }
    }
  }

  void update_subscriber_gauge() {
    std::size_t n = 0;
    for (const auto& c : conns) {
      if (c->subscribed && !c->closing) ++n;
    }
    reg().gauge("wire.subscribers").set(static_cast<double>(n));
  }

  // ---- streaming ---------------------------------------------------------

  /// Diff every job's report against its track and stream what changed.
  /// Called after each scheduler round — this is what replaces report
  /// polling: per-quantum progress, exactly-once terminal states.
  void emit_events() {
    const std::vector<serve::JobId> ids = service.jobs();
    if (tracks.size() < ids.size()) tracks.resize(ids.size());
    for (serve::JobId id : ids) {
      JobTrack& track = tracks[id - 1];
      if (track.terminal_sent) continue;
      const serve::JobReport rep = service.report(id);
      const bool terminal = rep.state != serve::JobState::kQueued &&
                            rep.state != serve::JobState::kRunning;
      const bool progressed =
          rep.quanta != track.quanta || rep.state != track.state ||
          rep.boards_now != track.boards_now || rep.resizes != track.resizes;
      track.quanta = rep.quanta;
      track.state = rep.state;
      track.boards_now = rep.boards_now;
      track.resizes = rep.resizes;
      if (progressed && !terminal) {
        std::ostringstream os;
        write_envelope_head(os, "event");
        os << ",\"event\":\"progress\",\"job\":" << rep.id << ",\"name\":\""
           << json_escape(rep.name) << "\",\"state\":\""
           << serve::job_state_name(rep.state)
           << "\",\"quanta\":" << rep.quanta
           << ",\"t\":" << num(rep.t_reached) << ",\"steps\":" << rep.steps
           << ",\"blocksteps\":" << rep.blocksteps
           << ",\"boards\":" << rep.boards_now
           << ",\"resizes\":" << rep.resizes << "}";
        broadcast(id, os.str());
      }
      if (terminal) {
        track.terminal_sent = true;
        std::ostringstream os;
        write_envelope_head(os, "event");
        os << ",\"event\":\"terminal\",\"job\":" << rep.id << ",\"report\":";
        write_job_report(os, rep);
        os << "}";
        broadcast(id, os.str());
        if (rep.state == serve::JobState::kCompleted) {
          // Snapshot events are opt-in (a 17-digit body table is the
          // bulk of the traffic) and per-connection.
          std::string snap;
          for (auto& c : conns) {
            if (c->closing || !c->want_snapshots || !wants(*c, id)) continue;
            if (snap.empty()) {
              double t = 0.0;
              const ParticleSet& set = service.final_state(id, &t);
              std::ostringstream ss;
              write_envelope_head(ss, "event");
              ss << ",\"event\":\"snapshot\",\"job\":" << rep.id
                 << ",\"name\":\"" << json_escape(rep.name)
                 << "\",\"snapshot\":";
              encode_snapshot(ss, set, t);
              ss << "}";
              snap = ss.str();
            }
            enqueue(*c, snap);
            ++stats.events;
            reg().counter("wire.events").add();
          }
        }
      }
    }
  }

  // ---- request handling --------------------------------------------------

  void respond_error(Conn& c, std::uint64_t id, const std::string& message) {
    std::ostringstream os;
    write_envelope_head(os, "response");
    os << ",\"id\":" << id << ",\"ok\":false,\"error\":\""
       << json_escape(message) << "\"}";
    enqueue(c, os.str());
  }

  void handle_request(Conn& c, const Envelope& env) {
    ++stats.requests;
    reg().counter("wire.requests").add();
    const double t0 = obs::monotonic_seconds();
    std::ostringstream os;
    write_envelope_head(os, "response");
    os << ",\"id\":" << env.id << ",\"ok\":true";

    if (env.method == "ping") {
      os << ",\"pong\":true}";
    } else if (env.method == "submit") {
      const JsonValue* spec_v = env.root.find("spec");
      if (spec_v == nullptr) {
        respond_error(c, env.id, "submit: missing key 'spec'");
        return;
      }
      const serve::JobSpec spec = decode_job_spec(*spec_v);
      const serve::SubmitResult r = service.submit(spec);
      // Backpressure travels verbatim: the reject reason name and
      // message a local ServeClient would see ARE the wire payload.
      os << ",\"job\":" << r.id << ",\"accepted\":"
         << (r.accepted ? "true" : "false") << ",\"reason\":\""
         << serve::reject_reason_name(r.reason) << "\",\"message\":\""
         << json_escape(r.message) << "\"}";
      if (r.accepted) c.submitted.push_back(r.id);
    } else if (env.method == "report" || env.method == "state" ||
               env.method == "final") {
      const JsonValue* job_v = env.root.find("job");
      if (job_v == nullptr || !job_v->is_number()) {
        respond_error(c, env.id, env.method + ": missing numeric key 'job'");
        return;
      }
      const auto job = static_cast<serve::JobId>(job_v->as_number());
      const std::vector<serve::JobId> ids = service.jobs();
      if (job < 1 || job > ids.size()) {
        respond_error(c, env.id,
                      env.method + ": unknown job " + std::to_string(job));
        return;
      }
      if (env.method == "report") {
        os << ",\"report\":";
        write_job_report(os, service.report(job));
        os << "}";
      } else if (env.method == "state") {
        os << ",\"state\":\"" << serve::job_state_name(service.state(job))
           << "\"}";
      } else {
        if (service.state(job) != serve::JobState::kCompleted) {
          respond_error(c, env.id,
                        "final: job " + std::to_string(job) +
                            " has not completed");
          return;
        }
        double t = 0.0;
        const ParticleSet& set = service.final_state(job, &t);
        os << ",\"snapshot\":";
        encode_snapshot(os, set, t);
        os << "}";
      }
    } else if (env.method == "subscribe") {
      c.subscribed = true;
      const JsonValue* snaps = env.root.find("snapshots");
      c.want_snapshots = snaps != nullptr && snaps->as_bool();
      const JsonValue* all = env.root.find("all");
      c.all_jobs = all != nullptr && all->as_bool();
      update_subscriber_gauge();
      os << ",\"subscribed\":true}";
    } else if (env.method == "stats") {
      const serve::ServiceStats& st = service.stats();
      os << ",\"stats\":{\"boards\":" << service.config().pool_boards()
         << ",\"healthy_boards\":" << service.healthy_boards()
         << ",\"rounds\":" << st.rounds << ",\"submitted\":" << st.submitted
         << ",\"rejected\":" << st.rejected
         << ",\"completed\":" << st.completed << ",\"failed\":" << st.failed
         << ",\"quarantined\":" << st.quarantined
         << ",\"preemptions\":" << st.preemptions
         << ",\"revocations\":" << st.revocations
         << ",\"requeues\":" << st.requeues << ",\"resizes\":" << st.resizes
         << ",\"boards_dead\":" << st.boards_dead << "}}";
    } else if (env.method == "drain") {
      service.drain();
      drain_requested = true;
      os << ",\"draining\":true}";
    } else {
      respond_error(c, env.id, "unknown method '" + env.method + "'");
      return;
    }
    enqueue(c, os.str());
    reg()
        .histogram("wire.rpc_s", 0.0, 0.1, 50)
        .observe(obs::monotonic_seconds() - t0);
  }

  /// Protocol failure: stream one final error event, then flush & close.
  void close_with_error(Conn& c, const std::string& message) {
    ++stats.protocol_errors;
    reg().counter("wire.protocol_errors").add();
    obs::log_warn("wire: conn %llu closed with error: %s",
                  static_cast<unsigned long long>(c.id), message.c_str());
    std::ostringstream os;
    write_envelope_head(os, "event");
    os << ",\"event\":\"error\",\"message\":\"" << json_escape(message)
       << "\"}";
    enqueue(c, os.str());
    ++stats.events;
    reg().counter("wire.events").add();
    c.closing = true;
    update_subscriber_gauge();
  }

  void drain_frames(Conn& c) {
    std::string payload;
    while (!c.closing) {
      const FrameDecoder::Status st = c.decoder.next(&payload);
      if (st == FrameDecoder::Status::kNeedMore) break;
      if (st == FrameDecoder::Status::kError) {
        close_with_error(c, "framing: " + c.decoder.error());
        break;
      }
      ++stats.frames_in;
      reg().counter("wire.frames_in").add();
      Envelope env;
      try {
        env = parse_envelope(payload);
      } catch (const WireError& e) {
        // Malformed JSON / bad schema: unrecoverable (the peer is not
        // speaking our protocol) -> close with error.
        close_with_error(c, e.what());
        break;
      }
      if (env.kind != "request") {
        close_with_error(c, "only requests flow client->server");
        break;
      }
      try {
        handle_request(c, env);
      } catch (const WireError& e) {
        // The envelope was sound but the payload was not (bad spec
        // keys, wrong value types): the peer speaks the protocol, so
        // answer ok:false and keep the connection.
        respond_error(c, env.id, e.what());
      }
    }
  }

  void pump(std::atomic<bool>* stop) {
    bool live = service.run_rounds(0);  // query only: any live work?
    while (true) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
      std::vector<PollItem> items;
      items.push_back({listener.fd(), false, false, false, false});
      for (const auto& c : conns) {
        items.push_back({c->sock.fd(), c->out_pos < c->outbuf.size(), false,
                         false, false});
      }
      // With quanta to run, the poll is a zero-timeout sweep between
      // rounds; idle, it parks briefly (still bounded so the stop flag
      // stays responsive).
      poll_fds(items, live ? 0 : 20);

      if (items[0].readable) {
        while (auto s = listener.accept()) {
          auto conn = std::make_unique<Conn>();
          conn->id = next_conn_id++;
          conn->sock = std::move(*s);
          conns.push_back(std::move(conn));
          ++stats.connections;
          reg().counter("wire.connections").add();
          reg().gauge("wire.conns.open")
              .set(static_cast<double>(conns.size()));
        }
      }

      // Only the conns that existed when the poll was built have an
      // items entry; just-accepted ones are served next iteration.
      const std::size_t polled = items.size() - 1;
      for (std::size_t i = 0; i < polled; ++i) {
        Conn& c = *conns[i];
        const PollItem& it = items[i + 1];
        if (it.error) {
          c.closing = true;
          c.outbuf.clear();
          c.out_pos = 0;
          continue;
        }
        if (it.readable && !c.closing) {
          std::string chunk;
          long n;
          try {
            n = c.sock.recv_some(&chunk);
          } catch (const SocketError&) {
            // ECONNRESET and friends: the peer is gone, nothing to
            // mourn — drop the connection, keep serving.
            c.closing = true;
            c.outbuf.clear();
            c.out_pos = 0;
            continue;
          }
          if (n == 0) {
            // Orderly EOF: the client is done sending; flush and drop.
            c.closing = true;
          } else if (n > 0) {
            reg().counter("wire.bytes_in").add(chunk.size());
            c.decoder.feed(chunk);
            drain_frames(c);
          }
        }
      }

      if (live) {
        live = service.run_rounds(1);
        emit_events();
      } else {
        live = service.run_rounds(0);
        if (live) continue;  // new submissions arrived: run next loop
        emit_events();  // flush terminal events for just-rejected jobs
      }

      // Flush what the kernel will take; sockets are non-blocking, so a
      // slow reader never stalls the scheduler.
      bool pending_out = false;
      for (auto& cp : conns) {
        Conn& c = *cp;
        while (c.out_pos < c.outbuf.size()) {
          const long sent = c.sock.send_some(
              std::string_view(c.outbuf).substr(c.out_pos));
          if (sent == -2) {  // peer vanished mid-stream
            c.closing = true;
            c.outbuf.clear();
            c.out_pos = 0;
            break;
          }
          if (sent <= 0) break;
          c.out_pos += static_cast<std::size_t>(sent);
        }
        if (c.out_pos == c.outbuf.size()) {
          c.outbuf.clear();
          c.out_pos = 0;
        } else {
          pending_out = true;
        }
      }
      // Reap: closing connections whose buffers flushed, and broken ones.
      const std::size_t before = conns.size();
      conns.erase(std::remove_if(conns.begin(), conns.end(),
                                 [](const std::unique_ptr<Conn>& c) {
                                   return c->closing &&
                                          c->out_pos >= c->outbuf.size();
                                 }),
                  conns.end());
      if (conns.size() != before) {
        reg().gauge("wire.conns.open").set(static_cast<double>(conns.size()));
        update_subscriber_gauge();
      }

      if (drain_requested && !live && !pending_out) return;
    }
  }
};

WireServer::WireServer(serve::GrapeService& service,
                       const std::string& listen_endpoint)
    : impl_(std::make_unique<Impl>(service, listen_endpoint)) {
  G6_REQUIRE(impl_ != nullptr);
}

WireServer::~WireServer() = default;

void WireServer::run(std::atomic<bool>* stop) { impl_->pump(stop); }

const Endpoint& WireServer::endpoint() const {
  return impl_->listener.endpoint();
}

const WireServerStats& WireServer::stats() const { return impl_->stats; }

}  // namespace g6::wire
