#include "wire/envelope.hpp"

#include <cmath>
#include <ostream>
#include <set>
#include <sstream>

#include "util/check.hpp"

namespace g6::wire {

namespace {

using obs::JsonValue;
using obs::json_escape;

[[noreturn]] void fail(const std::string& what) { throw WireError(what); }

double number_at(const JsonValue& obj, const std::string& key,
                 const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail(where + ": missing key '" + key + "'");
  if (!v->is_number()) fail(where + ": key '" + key + "' must be a number");
  return v->as_number();
}

std::size_t size_at(const JsonValue& obj, const std::string& key,
                    const std::string& where) {
  const double d = number_at(obj, key, where);
  if (d < 0.0 || d != std::floor(d)) {
    fail(where + ": key '" + key + "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

std::string string_at(const JsonValue& obj, const std::string& key,
                      const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail(where + ": missing key '" + key + "'");
  if (!v->is_string()) fail(where + ": key '" + key + "' must be a string");
  return v->as_string();
}

/// 17 significant digits: parses back to the identical binary64.
std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

Envelope parse_envelope(std::string_view text) {
  G6_REQUIRE(!text.empty());
  Envelope env;
  try {
    env.root = JsonValue::parse(text);
  } catch (const std::exception& e) {
    fail(std::string("envelope is not valid JSON: ") + e.what());
  }
  if (!env.root.is_object()) fail("envelope must be a JSON object");
  const std::string schema = string_at(env.root, "schema", "envelope");
  if (schema != kWireSchema) {
    fail("envelope: schema '" + schema + "' (expected " + kWireSchema + ")");
  }
  env.kind = string_at(env.root, "kind", "envelope");
  if (env.kind == "request") {
    env.id = static_cast<std::uint64_t>(size_at(env.root, "id", "request"));
    env.method = string_at(env.root, "method", "request");
  } else if (env.kind == "response") {
    env.id = static_cast<std::uint64_t>(size_at(env.root, "id", "response"));
    const JsonValue* ok = env.root.find("ok");
    if (ok == nullptr) fail("response: missing key 'ok'");
  } else if (env.kind == "event") {
    env.event = string_at(env.root, "event", "event");
  } else {
    fail("envelope: unknown kind '" + env.kind + "'");
  }
  return env;
}

void encode_job_spec(std::ostream& os, const serve::JobSpec& spec) {
  os << "{\"name\":\"" << json_escape(spec.name) << "\",\"model\":\""
     << json_escape(spec.model) << "\",\"n\":" << spec.n
     << ",\"w0\":" << num(spec.w0) << ",\"t_end\":" << num(spec.t_end)
     << ",\"eps\":" << num(spec.eps) << ",\"eta\":" << num(spec.eta)
     << ",\"seed\":" << spec.seed << ",\"boards\":" << spec.boards
     << ",\"boards_min\":" << spec.boards_min
     << ",\"boards_max\":" << spec.boards_max << ",\"priority\":\""
     << serve::priority_name(spec.priority)
     << "\",\"deadline_rounds\":" << spec.deadline_rounds
     << ",\"chaos_fail_quanta\":" << spec.chaos_fail_quanta << "}";
}

serve::JobSpec decode_job_spec(const obs::JsonValue& j) {
  const std::string where = "spec";
  if (!j.is_object()) fail(where + " must be a JSON object");
  // Same allowed-key set as a manifest job entry: a spec a manifest
  // accepts crosses the wire unchanged, and vice versa.
  const std::set<std::string> allowed = {
      "name",       "model",      "n",        "w0",
      "t_end",      "eps",        "eta",      "seed",
      "boards",     "boards_min", "boards_max", "priority",
      "deadline_rounds", "chaos_fail_quanta"};
  for (const auto& [key, value] : j.members()) {
    (void)value;
    if (allowed.count(key) == 0) fail(where + ": unknown key '" + key + "'");
  }
  serve::JobSpec spec;
  spec.name = string_at(j, "name", where);
  if (j.find("model")) spec.model = string_at(j, "model", where);
  if (j.find("n")) spec.n = size_at(j, "n", where);
  if (j.find("w0")) spec.w0 = number_at(j, "w0", where);
  if (j.find("t_end")) spec.t_end = number_at(j, "t_end", where);
  if (j.find("eps")) spec.eps = number_at(j, "eps", where);
  if (j.find("eta")) spec.eta = number_at(j, "eta", where);
  if (j.find("seed")) {
    spec.seed = static_cast<unsigned>(size_at(j, "seed", where));
  }
  if (j.find("boards")) spec.boards = size_at(j, "boards", where);
  if (j.find("boards_min")) spec.boards_min = size_at(j, "boards_min", where);
  if (j.find("boards_max")) spec.boards_max = size_at(j, "boards_max", where);
  if (j.find("priority")) {
    const std::string p = string_at(j, "priority", where);
    if (p == "interactive") {
      spec.priority = serve::Priority::kInteractive;
    } else if (p == "batch") {
      spec.priority = serve::Priority::kBatch;
    } else {
      fail(where + ": unknown priority '" + p + "'");
    }
  }
  if (j.find("deadline_rounds")) {
    spec.deadline_rounds = size_at(j, "deadline_rounds", where);
  }
  if (j.find("chaos_fail_quanta")) {
    spec.chaos_fail_quanta =
        static_cast<int>(size_at(j, "chaos_fail_quanta", where));
  }
  return spec;
}

void encode_snapshot(std::ostream& os, const ParticleSet& set, double t) {
  os << "{\"t\":" << num(t) << ",\"n\":" << set.size() << ",\"bodies\":[";
  bool first = true;
  for (const Body& b : set.bodies()) {
    if (!first) os << ',';
    first = false;
    os << '[' << num(b.mass) << ',' << num(b.pos.x) << ',' << num(b.pos.y)
       << ',' << num(b.pos.z) << ',' << num(b.vel.x) << ',' << num(b.vel.y)
       << ',' << num(b.vel.z) << ']';
  }
  os << "]}";
}

ParticleSet decode_snapshot(const obs::JsonValue& j, double* t) {
  const std::string where = "snapshot";
  if (!j.is_object()) fail(where + " must be a JSON object");
  if (t != nullptr) *t = number_at(j, "t", where);
  const std::size_t n = size_at(j, "n", where);
  const JsonValue* bodies = j.find("bodies");
  if (bodies == nullptr || !bodies->is_array()) {
    fail(where + ": key 'bodies' must be an array");
  }
  if (bodies->items().size() != n) {
    fail(where + ": n=" + std::to_string(n) + " but " +
         std::to_string(bodies->items().size()) + " bodies");
  }
  ParticleSet set;
  set.reserve(n);
  for (const JsonValue& row : bodies->items()) {
    if (!row.is_array() || row.items().size() != 7) {
      fail(where + ": each body is [m,x,y,z,vx,vy,vz]");
    }
    for (const JsonValue& c : row.items()) {
      if (!c.is_number()) fail(where + ": body components must be numbers");
    }
    Body b;
    b.mass = row.items()[0].as_number();
    b.pos = Vec3(row.items()[1].as_number(), row.items()[2].as_number(),
                 row.items()[3].as_number());
    b.vel = Vec3(row.items()[4].as_number(), row.items()[5].as_number(),
                 row.items()[6].as_number());
    set.add(b);
  }
  return set;
}

}  // namespace g6::wire
