#include "wire/client.hpp"

#include <sstream>

#include "util/check.hpp"
#include "wire/envelope.hpp"

namespace g6::wire {

namespace {

std::uint64_t u64_at(const obs::JsonValue& j, const char* key) {
  const obs::JsonValue* v = j.find(key);
  if (v == nullptr || !v->is_number()) {
    throw WireError(std::string("response missing numeric key '") + key +
                    "'");
  }
  return static_cast<std::uint64_t>(v->as_number());
}

std::string string_at(const obs::JsonValue& j, const char* key) {
  const obs::JsonValue* v = j.find(key);
  if (v == nullptr || !v->is_string()) {
    throw WireError(std::string("response missing string key '") + key +
                    "'");
  }
  return v->as_string();
}

}  // namespace

RemoteClient::RemoteClient(const std::string& endpoint)
    : sock_(connect_to(parse_endpoint(endpoint))) {
  G6_REQUIRE(sock_.valid());
}

std::optional<obs::JsonValue> RemoteClient::read_envelope() {
  std::string payload;
  while (true) {
    const FrameDecoder::Status st = decoder_.next(&payload);
    if (st == FrameDecoder::Status::kFrame) {
      return obs::JsonValue::parse(payload);
    }
    if (st == FrameDecoder::Status::kError) {
      throw WireError("server sent a bad frame: " + decoder_.error());
    }
    std::string chunk;
    const long n = sock_.recv_some(&chunk);
    if (n == 0) {
      if (decoder_.buffered() != 0) {
        throw WireError("server closed mid-frame (torn frame)");
      }
      return std::nullopt;  // orderly EOF between frames
    }
    if (n > 0) decoder_.feed(chunk);
    // n < 0 cannot happen on a blocking socket; recv_some loops for us.
  }
}

obs::JsonValue RemoteClient::request(const std::string& method,
                                     const std::string& extra_json) {
  const std::uint64_t id = next_id_++;
  std::ostringstream os;
  os << "{\"schema\":\"" << kWireSchema
     << "\",\"kind\":\"request\",\"id\":" << id << ",\"method\":\"" << method
     << "\"" << extra_json << "}";
  sock_.send_all(encode_frame(os.str()));
  while (true) {
    std::optional<obs::JsonValue> doc = read_envelope();
    if (!doc) {
      throw WireError("server closed before responding to '" + method + "'");
    }
    const std::string kind = string_at(*doc, "kind");
    if (kind == "event") {
      // Unsolicited push racing our response: keep it for next_event().
      inbox_.push_back({string_at(*doc, "event"), std::move(*doc)});
      continue;
    }
    if (kind != "response") {
      throw WireError("unexpected '" + kind + "' envelope from server");
    }
    if (u64_at(*doc, "id") != id) {
      throw WireError("response id mismatch (single in-flight request "
                      "protocol violated)");
    }
    const obs::JsonValue* ok = doc->find("ok");
    if (ok == nullptr) throw WireError("response missing key 'ok'");
    if (!ok->as_bool()) {
      throw WireError("server rejected '" + method +
                      "': " + string_at(*doc, "error"));
    }
    return std::move(*doc);
  }
}

void RemoteClient::ping() { request("ping", ""); }

serve::SubmitResult RemoteClient::submit(const serve::JobSpec& spec) {
  std::ostringstream os;
  os << ",\"spec\":";
  encode_job_spec(os, spec);
  const obs::JsonValue doc = request("submit", os.str());
  serve::SubmitResult r;
  r.id = static_cast<serve::JobId>(u64_at(doc, "job"));
  const obs::JsonValue* accepted = doc.find("accepted");
  if (accepted == nullptr) throw WireError("submit: missing 'accepted'");
  r.accepted = accepted->as_bool();
  last_reason_ = string_at(doc, "reason");
  r.message = string_at(doc, "message");
  // The enum name survives the wire as text; keep the enum itself
  // coarse (accepted vs not) and let callers read last_reject_reason()
  // for the precise cause.
  r.reason = r.accepted ? serve::RejectReason::kNone
                        : serve::RejectReason::kQueueFull;
  for (int i = 0; i <= static_cast<int>(serve::RejectReason::kQuarantined);
       ++i) {
    const auto reason = static_cast<serve::RejectReason>(i);
    if (last_reason_ == serve::reject_reason_name(reason)) {
      r.reason = reason;
      break;
    }
  }
  return r;
}

void RemoteClient::subscribe(bool snapshots, bool all_jobs) {
  std::ostringstream os;
  os << ",\"snapshots\":" << (snapshots ? "true" : "false")
     << ",\"all\":" << (all_jobs ? "true" : "false");
  request("subscribe", os.str());
}

std::optional<WireEvent> RemoteClient::next_event(bool wait) {
  while (inbox_pos_ >= inbox_.size()) {
    inbox_.clear();
    inbox_pos_ = 0;
    if (!wait) return std::nullopt;
    std::optional<obs::JsonValue> doc = read_envelope();
    if (!doc) return std::nullopt;  // server is done streaming
    const std::string kind = string_at(*doc, "kind");
    if (kind != "event") {
      throw WireError("unsolicited '" + kind + "' envelope while waiting "
                      "for events");
    }
    inbox_.push_back({string_at(*doc, "event"), std::move(*doc)});
  }
  WireEvent ev = std::move(inbox_[inbox_pos_]);
  ++inbox_pos_;
  if (inbox_pos_ >= inbox_.size()) {
    inbox_.clear();
    inbox_pos_ = 0;
  }
  return ev;
}

obs::JsonValue RemoteClient::report_json(serve::JobId id) {
  const obs::JsonValue doc =
      request("report", ",\"job\":" + std::to_string(id));
  const obs::JsonValue* rep = doc.find("report");
  if (rep == nullptr) throw WireError("report: missing 'report'");
  return *rep;
}

std::string RemoteClient::state_name(serve::JobId id) {
  return string_at(request("state", ",\"job\":" + std::to_string(id)),
                   "state");
}

ParticleSet RemoteClient::final_state(serve::JobId id, double* t) {
  const obs::JsonValue doc =
      request("final", ",\"job\":" + std::to_string(id));
  const obs::JsonValue* snap = doc.find("snapshot");
  if (snap == nullptr) throw WireError("final: missing 'snapshot'");
  return decode_snapshot(*snap, t);
}

obs::JsonValue RemoteClient::stats_json() {
  const obs::JsonValue doc = request("stats", "");
  const obs::JsonValue* st = doc.find("stats");
  if (st == nullptr) throw WireError("stats: missing 'stats'");
  return *st;
}

void RemoteClient::drain() { request("drain", ""); }

}  // namespace g6::wire
