#include "wire/framing.hpp"

#include "util/check.hpp"

namespace g6::wire {

std::string encode_frame(std::string_view payload, std::size_t max_payload) {
  G6_REQUIRE_MSG(!payload.empty(), "wire frames never carry empty payloads");
  G6_REQUIRE_MSG(payload.size() <= max_payload,
                 "frame payload exceeds the protocol bound");
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>(len & 0xff));
  frame.append(payload);
  return frame;
}

FrameDecoder::FrameDecoder(std::size_t max_payload)
    : max_payload_(max_payload) {
  G6_REQUIRE(max_payload_ >= 1);
}

void FrameDecoder::feed(std::string_view data) {
  if (!error_.empty()) return;  // poisoned: nothing past this point parses
  buf_.append(data);
}

FrameDecoder::Status FrameDecoder::next(std::string* out) {
  G6_REQUIRE(out != nullptr);
  if (!error_.empty()) return Status::kError;
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    // Compact lazily: only once everything buffered has been consumed,
    // so steady-state decoding never memmoves partial frames around.
    if (pos_ == buf_.size() && pos_ != 0) {
      buf_.clear();
      pos_ = 0;
    }
    return Status::kNeedMore;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t len = (static_cast<std::uint32_t>(p[0]) << 24) |
                            (static_cast<std::uint32_t>(p[1]) << 16) |
                            (static_cast<std::uint32_t>(p[2]) << 8) |
                            static_cast<std::uint32_t>(p[3]);
  if (len == 0) {
    error_ = "zero-length frame (desynchronized or hostile peer)";
    return Status::kError;
  }
  if (len > max_payload_) {
    error_ = "frame length " + std::to_string(len) +
             " exceeds the protocol bound " + std::to_string(max_payload_);
    return Status::kError;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + len) return Status::kNeedMore;
  out->assign(buf_, pos_ + kFrameHeaderBytes, len);
  pos_ += kFrameHeaderBytes + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return Status::kFrame;
}

}  // namespace g6::wire
