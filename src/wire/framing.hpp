#pragma once
// Length-prefixed frame codec — the lowest layer of the wire protocol
// (docs/SERVING.md, "Wire protocol").
//
// A frame is a 4-byte big-endian payload length followed by exactly that
// many payload bytes (JSON text one level up). The codec is transport-
// agnostic: FrameDecoder consumes whatever byte chunks the socket layer
// hands it — a frame torn across a dozen reads, three frames in one read
// — and re-emits whole payloads in order.
//
// The decoder is strict and fail-closed: a zero-length frame or a length
// above `max_payload` poisons the stream permanently (kError), because a
// desynchronized length prefix turns every subsequent byte into garbage
// — the only safe response is to drop the connection. The framing fuzz
// test (tests/wire/framing_test.cpp) drives this decoder with seeded
// random splits and corruptions under ASan/UBSan.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace g6::wire {

/// Frame header size: a 4-byte big-endian payload length.
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Largest payload the codec accepts (8 MiB). A 64k-body snapshot event
/// is ~3.5 MiB of JSON; anything past this bound is a desynchronized or
/// hostile peer, not a bigger message.
inline constexpr std::size_t kMaxFramePayload = 8u << 20;

/// Serialize one frame (header + payload). Requires
/// 1 <= payload.size() <= max_payload.
std::string encode_frame(std::string_view payload,
                         std::size_t max_payload = kMaxFramePayload);

/// Incremental frame parser over an arbitrary chunking of the stream.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  ///< no complete frame buffered; feed more bytes
    kFrame,     ///< one payload extracted
    kError,     ///< stream poisoned (bad length); error() says why
  };

  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload);

  /// Append raw bytes received from the transport.
  void feed(std::string_view data);

  /// Extract the next complete payload into `out`. Call repeatedly until
  /// it stops returning kFrame (one read can complete several frames).
  /// After kError the decoder stays poisoned; feed() becomes a no-op.
  Status next(std::string* out);

  /// Human-readable reason once poisoned ("" otherwise).
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (tests; idle-connection audits).
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::size_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  std::string error_;
};

}  // namespace g6::wire
