#pragma once
// WireServer — the remote serving loop (docs/SERVING.md, "Wire
// protocol").
//
// One WireServer fronts one GrapeService on one listening socket (unix
// or tcp). The loop is single-threaded BY DESIGN: the serving contract
// says "one control thread drives the scheduler", so the same thread
// multiplexes socket I/O (poll, non-blocking) with
// GrapeService::run_rounds(1) — accept and submissions land between
// rounds, quanta still parallelize on the shared src/exec pool
// underneath run_rounds, and no lock ever spans a round. Call run() from
// a pool task (bench/serve_load) or the tool's main thread
// (tools/grape6_served).
//
// Clients speak grape6-wire-v1 request/response envelopes; a subscribe
// request upgrades the connection to streaming: per-quantum progress
// events, exactly-once terminal events, and (opt-in) final snapshot
// events replace report polling. Admission backpressure travels
// verbatim: a rejected submit's RejectReason name and message are the
// response the remote client sees — a remote reject is
// indistinguishable from a local one.
//
// Failure envelope: a frame that is not a valid envelope (bad framing,
// malformed JSON, wrong schema) poisons only ITS connection — the server
// queues one final error event and closes after flushing. A valid
// request with a bad payload (unknown method, missing keys) gets an
// ok:false response and the connection lives on.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace g6::serve {
class GrapeService;
}  // namespace g6::serve

namespace g6::wire {

struct Endpoint;

/// Aggregate counters mirrored into the wire.* metrics.
struct WireServerStats {
  std::uint64_t connections = 0;   ///< total accepted
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t requests = 0;
  std::uint64_t events = 0;        ///< progress + terminal + snapshot + error
  std::uint64_t protocol_errors = 0;  ///< connections closed with error
};

class WireServer {
 public:
  /// Bind + listen on `listen_endpoint` ("unix:/path" or
  /// "tcp:host:port"). Throws SocketError on bind failure. The service
  /// must outlive the server, and no other thread may touch it while
  /// run() is executing.
  WireServer(serve::GrapeService& service, const std::string& listen_endpoint);
  ~WireServer();
  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Serve until (a) a client requested drain AND no live work remains
  /// AND every queued byte is flushed, or (b) `stop` is raised (SIGTERM:
  /// returns promptly; the GrapeService's own stop_flag handles the
  /// scheduler-side graceful drain).
  void run(std::atomic<bool>* stop);

  /// The bound endpoint (tcp:host:0 listeners report the real port).
  const Endpoint& endpoint() const;

  const WireServerStats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace g6::wire
