#pragma once
// Socket transport: the ONLY place in the tree that touches raw socket
// primitives (g6lint `raw-socket` confines <sys/socket.h>, ::socket,
// ::send, ::recv, ::poll, ... to src/wire/). Everything above sees RAII
// wrappers and byte buffers.
//
// Endpoints are strings:
//
//   unix:/path/to.sock   unix-domain stream socket (CI, tests, loadgen)
//   tcp:host:port        TCP, IPv4 numeric host or "localhost"
//
// Servers listen non-blocking and multiplex with poll_fds(); clients
// connect blocking (a request/response client has nothing better to do
// than wait). All errors are SocketError with errno text — no silent
// partial sends, no EINTR leaks.

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace g6::wire {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A parsed endpoint string.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< unix: socket path
  std::string host;  ///< tcp: numeric IPv4 or "localhost"
  int port = 0;      ///< tcp
};

/// Parse "unix:/path" or "tcp:host:port"; throws SocketError on anything
/// else (unknown scheme, missing path, non-numeric port).
Endpoint parse_endpoint(const std::string& endpoint);

/// One connected stream socket (RAII, move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Blocking: send the whole buffer (loops over partial sends/EINTR).
  void send_all(std::string_view data);

  /// One non-blocking send attempt. Returns bytes accepted by the
  /// kernel; -1 means "try again later" (EAGAIN/EINTR); -2 means the
  /// peer is gone (EPIPE/ECONNRESET — drop the connection, don't
  /// throw: a vanished client is routine for a server). Other errors
  /// throw SocketError.
  long send_some(std::string_view data);

  /// Read up to `max` bytes into `out` (appended). Returns bytes read;
  /// 0 means orderly EOF. On a non-blocking socket, -1 means "no data
  /// right now" (EAGAIN); real errors throw.
  long recv_some(std::string* out, std::size_t max = 64 * 1024);

  void set_nonblocking(bool on);

 private:
  int fd_ = -1;
};

/// A listening socket bound to an endpoint (non-blocking accepts).
class ListenSocket {
 public:
  /// Bind + listen. For unix endpoints a stale socket file is unlinked
  /// first. Throws SocketError on failure.
  explicit ListenSocket(const Endpoint& ep, int backlog = 64);
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Accept one pending connection (already non-blocking); nullopt when
  /// none is waiting.
  std::optional<Socket> accept();

  int fd() const { return fd_; }
  /// The bound endpoint; for tcp:host:0 the kernel-assigned port is
  /// filled in, so tests can listen on an ephemeral port.
  const Endpoint& endpoint() const { return ep_; }

 private:
  int fd_ = -1;
  Endpoint ep_;
};

/// Blocking client connect; throws SocketError (connection refused,
/// missing socket file, ...).
Socket connect_to(const Endpoint& ep);

/// One fd's poll request/result for poll_fds().
struct PollItem {
  int fd = -1;
  bool want_write = false;  ///< also wait for writability (pending outbuf)
  bool readable = false;    ///< out: data (or a pending accept) available
  bool writable = false;    ///< out: send would make progress
  bool error = false;       ///< out: HUP/ERR — treat as disconnect
};

/// Poll all items at once; timeout in milliseconds (0 = non-blocking
/// check, <0 = wait indefinitely). EINTR retries internally.
void poll_fds(std::vector<PollItem>& items, int timeout_ms);

}  // namespace g6::wire
