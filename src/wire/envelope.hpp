#pragma once
// grape6-wire-v1 envelopes — the JSON payloads inside wire frames
// (docs/SERVING.md, "Wire protocol").
//
// Three envelope kinds travel on a connection:
//
//   request   client -> server  {"schema","kind":"request","id",method,...}
//   response  server -> client  {"schema","kind":"response","id","ok",...}
//   event     server -> client  {"schema","kind":"event","event",...}
//
// Requests and responses correlate by `id` (client-assigned, monotonic
// per connection). Events are unsolicited: once a client subscribes, the
// server streams per-quantum progress, exactly-once terminal states and
// (optionally) final snapshots without being polled.
//
// Job specs cross the wire in the same JSON shape a
// grape6-serve-manifest-v1 job entry uses, and particle snapshots carry
// every double at 17 significant digits — std::strtod parses that back
// to the identical binary64, so a client-side snapshot file is
// byte-identical to one the server (or a standalone run) writes. That is
// the transport half of the serve_identity contract.

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "nbody/particle.hpp"
#include "obs/json.hpp"
#include "serve/types.hpp"

namespace g6::wire {

inline constexpr const char* kWireSchema = "grape6-wire-v1";

/// Envelope schema violation: wrong schema/kind, missing or mistyped
/// keys, malformed payloads. The server answers one with an error
/// response (or closes, if the frame was not even an envelope).
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One parsed envelope. `root` keeps the full document so method
/// handlers can reach their payload keys.
struct Envelope {
  std::string kind;     ///< "request" | "response" | "event"
  std::uint64_t id = 0; ///< request/response correlation id
  std::string method;   ///< requests: submit|report|state|final|subscribe|stats|drain|ping
  std::string event;    ///< events: progress|terminal|snapshot
  obs::JsonValue root;
};

/// Parse and validate one envelope; throws WireError on any deviation
/// (bad JSON, wrong schema, unknown kind, missing id/method/event).
Envelope parse_envelope(std::string_view text);

/// Write `spec` as a manifest-shaped JSON job object (17-digit doubles).
void encode_job_spec(std::ostream& os, const serve::JobSpec& spec);

/// Parse a manifest-shaped job object. Strict keys (unknown keys throw);
/// value-level validation (n >= 2, ...) is admission's job — an invalid
/// spec travels to the server and comes back as an explicit
/// kInvalidSpec rejection, same as a local submit.
serve::JobSpec decode_job_spec(const obs::JsonValue& j);

/// Write a particle snapshot payload:
/// {"t":..,"n":..,"bodies":[[m,x,y,z,vx,vy,vz],...]} at 17 digits.
void encode_snapshot(std::ostream& os, const ParticleSet& set, double t);

/// Parse a snapshot payload; `t` receives the simulation time.
ParticleSet decode_snapshot(const obs::JsonValue& j, double* t);

}  // namespace g6::wire
