#include "wire/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "util/check.hpp"

namespace g6::wire {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}

[[noreturn]] void fail_plain(const std::string& what) {
  throw SocketError(what);
}

/// Resolve the endpoint into a bound-or-connected address. Only numeric
/// IPv4 and "localhost" are supported: the serving layer is a lab/CI
/// tool, and skipping getaddrinfo keeps connect() free of DNS stalls.
sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    fail_plain("tcp endpoint host '" + ep.host +
               "' is not a numeric IPv4 address or localhost");
  }
  return addr;
}

sockaddr_un unix_addr(const Endpoint& ep) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (ep.path.size() >= sizeof(addr.sun_path)) {
    fail_plain("unix socket path too long: " + ep.path);
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return addr;
}

int new_socket(const Endpoint& ep) {
  const int domain = ep.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) fail("socket()");
  return fd;
}

}  // namespace

Endpoint parse_endpoint(const std::string& endpoint) {
  Endpoint ep;
  if (endpoint.rfind("unix:", 0) == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = endpoint.substr(5);
    if (ep.path.empty()) fail_plain("unix endpoint needs a path: " + endpoint);
    return ep;
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      fail_plain("tcp endpoint needs host:port: " + endpoint);
    }
    ep.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long p = std::strtol(port.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || p < 0 || p > 65535) {
      fail_plain("tcp endpoint port out of range: " + endpoint);
    }
    ep.port = static_cast<int>(p);
    return ep;
  }
  fail_plain("endpoint must be unix:<path> or tcp:<host>:<port>, got: " +
             endpoint);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(std::string_view data) {
  G6_REQUIRE(valid());
  std::size_t sent = 0;
  while (sent < data.size()) {
    const auto n = ::send(fd_, data.data() + sent, data.size() - sent,
                          MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send()");
    }
    sent += static_cast<std::size_t>(n);
  }
}

long Socket::send_some(std::string_view data) {
  G6_REQUIRE(valid());
  if (data.empty()) return 0;
  const auto n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
    if (errno == EPIPE || errno == ECONNRESET) return -2;
    fail("send()");
  }
  return static_cast<long>(n);
}

long Socket::recv_some(std::string* out, std::size_t max) {
  G6_REQUIRE(valid() && out != nullptr && max > 0);
  const std::size_t old = out->size();
  out->resize(old + max);
  const auto n = ::recv(fd_, out->data() + old, max, 0);
  if (n < 0) {
    out->resize(old);
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EINTR) return -1;  // caller polls again
    fail("recv()");
  }
  out->resize(old + static_cast<std::size_t>(n));
  return static_cast<long>(n);
}

void Socket::set_nonblocking(bool on) {
  G6_REQUIRE(valid());
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, next) < 0) fail("fcntl(F_SETFL)");
}

ListenSocket::ListenSocket(const Endpoint& ep, int backlog) : ep_(ep) {
  fd_ = new_socket(ep);
  if (ep.kind == Endpoint::Kind::kUnix) {
    // A previous server's socket file would make bind() fail with
    // EADDRINUSE even though nobody is listening; stale files are the
    // normal crash residue, so remove and rebind.
    ::unlink(ep.path.c_str());
    sockaddr_un addr = unix_addr(ep);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      fail("bind(" + ep.path + ")");
    }
  } else {
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = tcp_addr(ep);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      fail("bind(" + ep.host + ":" + std::to_string(ep.port) + ")");
    }
    if (ep.port == 0) {
      // Ephemeral port: read back what the kernel assigned so the
      // endpoint() a test publishes is connectable.
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
        fail("getsockname()");
      }
      ep_.port = ntohs(bound.sin_port);
    }
  }
  if (::listen(fd_, backlog) < 0) fail("listen()");
  // Non-blocking accepts: the server loop polls, it never parks in
  // accept() while quanta are waiting to run.
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(listener O_NONBLOCK)");
  }
}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
  if (ep_.kind == Endpoint::Kind::kUnix) ::unlink(ep_.path.c_str());
}

std::optional<Socket> ListenSocket::accept() {
  G6_REQUIRE(fd_ >= 0);
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return std::nullopt;
    }
    fail("accept()");
  }
  Socket s(conn);
  s.set_nonblocking(true);
  return s;
}

Socket connect_to(const Endpoint& ep) {
  const int fd = new_socket(ep);
  int rc;
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr = unix_addr(ep);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } else {
    sockaddr_in addr = tcp_addr(ep);
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  if (rc < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect(" + (ep.kind == Endpoint::Kind::kUnix
                           ? ep.path
                           : ep.host + ":" + std::to_string(ep.port)) +
         ")");
  }
  return Socket(fd);
}

void poll_fds(std::vector<PollItem>& items, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(items.size());
  for (const PollItem& it : items) {
    pollfd p{};
    p.fd = it.fd;
    p.events = POLLIN;
    if (it.want_write) p.events |= POLLOUT;
    fds.push_back(p);
  }
  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) fail("poll()");
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i].readable = (fds[i].revents & POLLIN) != 0;
    items[i].writable = (fds[i].revents & POLLOUT) != 0;
    items[i].error = (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
}

}  // namespace g6::wire
