#pragma once
// RemoteClient — a ServeClient that crosses a socket.
//
// Mirrors serve::ServeClient's verbs (submit / report / state /
// final_state) over grape6-wire-v1 request/response envelopes, and adds
// the streaming verbs a remote tenant wants: subscribe() upgrades the
// connection, next_event() then yields per-quantum progress, terminal
// reports and (opt-in) final snapshots as the server pushes them — no
// polling.
//
// Blocking by design: a client has nothing better to do than wait for
// its response. Any response frame with ok:false, and any envelope the
// server should not have sent, throws WireError; transport failures
// throw SocketError. The client is single-threaded — one outstanding
// request at a time, correlated by a per-connection monotonic id.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nbody/particle.hpp"
#include "obs/json.hpp"
#include "serve/types.hpp"
#include "wire/framing.hpp"
#include "wire/socket.hpp"

namespace g6::wire {

/// One server-pushed event, parsed: `event` is
/// progress|terminal|snapshot|error, `root` the full envelope document.
struct WireEvent {
  std::string event;
  obs::JsonValue root;
};

class RemoteClient {
 public:
  /// Connect to a WireServer ("unix:/path" or "tcp:host:port"); throws
  /// SocketError when nobody is listening.
  explicit RemoteClient(const std::string& endpoint);

  /// Round-trip liveness probe.
  void ping();

  /// Admission-checked submission, same contract as ServeClient::submit:
  /// a false result is explicit backpressure with the server's
  /// RejectReason name in `reason_name` and prose in `message` —
  /// verbatim what a local submit would have returned.
  serve::SubmitResult submit(const serve::JobSpec& spec);
  /// RejectReason name of the last submit ("none" when accepted).
  const std::string& last_reject_reason() const { return last_reason_; }

  /// Upgrade to streaming: the server will push progress/terminal (and,
  /// with `snapshots`, final-snapshot) events for this connection's
  /// submissions — or for every job when `all_jobs` is set.
  void subscribe(bool snapshots = false, bool all_jobs = false);

  /// Next pushed event. Blocks when `wait` and none is buffered;
  /// nullopt on orderly server EOF (or immediately when !wait and the
  /// inbox is empty).
  std::optional<WireEvent> next_event(bool wait = true);

  /// Full JobReport as the server's JSON object (field-for-field the
  /// grape6_serve report file's per-job object).
  obs::JsonValue report_json(serve::JobId id);
  std::string state_name(serve::JobId id);
  /// Final particle state of a completed job; `t` receives its time.
  /// Save with g6::save_snapshot for a byte-identical snapshot file.
  ParticleSet final_state(serve::JobId id, double* t = nullptr);

  /// Service-wide counters as the server's JSON object.
  obs::JsonValue stats_json();

  /// Ask the service to stop admitting; in-flight jobs still finish.
  void drain();

 private:
  /// Send one request, pump frames until its response arrives (events
  /// seen on the way are queued for next_event). Throws WireError on
  /// ok:false, returns the response document otherwise.
  obs::JsonValue request(const std::string& method,
                         const std::string& extra_json);
  /// Read + decode one frame into an envelope; nullopt on orderly EOF.
  std::optional<obs::JsonValue> read_envelope();

  Socket sock_;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
  std::vector<WireEvent> inbox_;
  std::size_t inbox_pos_ = 0;
  std::string last_reason_;
};

}  // namespace g6::wire
