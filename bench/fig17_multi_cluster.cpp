// Figure 17 — multi-cluster performance.
//
// Speed [Tflops] vs N for 4-, 8- and 16-host systems (1, 2 and 4
// clusters), constant softening. Paper features: the crossover where
// multi-cluster beats single-cluster is high (N ~ 1e5), and even at
// N = 1e6 the multi-cluster speedups stay well below ideal — the copy-
// algorithm exchange and the extra synchronization operations dominate.

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(
      cli.get_int("max-n", 2'097'152, "largest N of the sweep"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  const CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Figure 17: multi-cluster speed vs N (4/8/16 hosts = 1/2/4 clusters)");

  const SystemConfig c1 = SystemConfig::multi_cluster(1);
  const SystemConfig c2 = SystemConfig::multi_cluster(2);
  const SystemConfig c4 = SystemConfig::multi_cluster(4);
  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  TablePrinter table(std::cout, {"N", "Tflops_1cl(4n)", "Tflops_2cl(8n)",
                                 "Tflops_4cl(16n)", "speedup_4cl"});
  table.mirror_csv(bench_csv_path("fig17_multi_cluster"));
  table.print_header();

  double cross2 = 0.0, cross4 = 0.0;
  for (std::size_t n : bench::figure_grid(max_n, 5)) {
    const SpeedPoint p1 =
        measure_speed_synthetic(n, SofteningLaw::kConstant, c1, scaling);
    const SpeedPoint p2 =
        measure_speed_synthetic(n, SofteningLaw::kConstant, c2, scaling);
    const SpeedPoint p4 =
        measure_speed_synthetic(n, SofteningLaw::kConstant, c4, scaling);
    table.print_row({TablePrinter::num(static_cast<long long>(n)),
                     TablePrinter::num(p1.tflops()), TablePrinter::num(p2.tflops()),
                     TablePrinter::num(p4.tflops()),
                     TablePrinter::num(p4.tflops() / p1.tflops())});
    if (cross2 == 0.0 && p2.tflops() > p1.tflops()) cross2 = static_cast<double>(n);
    if (cross4 == 0.0 && p4.tflops() > p1.tflops()) cross4 = static_cast<double>(n);
  }

  std::printf("\ncrossover (2 clusters beat 1): N ~ %.3g\n", cross2);
  std::printf("crossover (4 clusters beat 1): N ~ %.3g\n", cross4);
  std::printf("paper checkpoints: crossover near N ~ 1e5; 4-cluster speedup at\n"
              "N = 1e6 significantly below the ideal factor 4.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
