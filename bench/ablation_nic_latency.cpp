// Ablation — synchronization latency sweep (Sec 4.4 tuning options).
//
// The paper lists the options they considered: better NICs (measured),
// Myrinet (5-10x lower latency, not affordable that year), and
// OS-bypass protocols. This sweep shows what each buys: the multi-host
// crossover N and the full-machine speed at N = 1.8M.

#include "bench_common.hpp"

namespace {

using namespace g6;

std::size_t find_crossover(const TraceScaling& scaling, const SystemConfig& par,
                           const SystemConfig& single) {
  for (std::size_t n : log_grid(512, 2'000'000, 8)) {
    const SpeedPoint pp =
        measure_speed_synthetic(n, SofteningLaw::kConstant, par, scaling);
    const SpeedPoint ps =
        measure_speed_synthetic(n, SofteningLaw::kConstant, single, scaling);
    if (pp.speed_flops > ps.speed_flops) return n;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout, "Ablation: NIC / latency sweep (Sec 4.4)");

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  const NicModel nics_list[] = {nics::ns83820(), nics::tigon2(),
                                nics::intel82540(), nics::myrinet()};

  TablePrinter table(std::cout,
                     {"NIC", "rtt_us", "MB/s", "x2host_cross_N",
                      "x4cluster_cross_N", "Tflops@1.8M(16n)"});
  table.mirror_csv(bench_csv_path("ablation_nic_latency"));
  table.print_header();

  for (const NicModel& nic : nics_list) {
    SystemConfig c1 = SystemConfig::cluster(1);
    SystemConfig c2 = SystemConfig::cluster(2);
    SystemConfig m1 = SystemConfig::multi_cluster(1);
    SystemConfig m4 = SystemConfig::multi_cluster(4);
    for (SystemConfig* s : {&c1, &c2, &m1, &m4}) s->nic = nic;

    const std::size_t cross2 = find_crossover(scaling, c2, c1);
    const std::size_t cross4 = find_crossover(scaling, m4, m1);
    const SpeedPoint big =
        measure_speed_synthetic(1'800'000, SofteningLaw::kConstant, m4, scaling);

    table.print_row({nic.name, TablePrinter::num(nic.round_trip_latency_s * 1e6),
                     TablePrinter::num(nic.bandwidth_Bps / 1e6),
                     TablePrinter::num(static_cast<long long>(cross2)),
                     TablePrinter::num(static_cast<long long>(cross4)),
                     TablePrinter::num(big.tflops())});
  }

  std::printf("\nreading: lower round-trip latency pulls both crossovers down and\n"
              "lifts the large-N plateau — the quantitative version of the\n"
              "paper's 'most obvious solution is to move to Myrinet'.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
