// Figure 15 — multi-node (single cluster) performance.
//
// Speed vs N for 1-, 2- and 4-host systems, left panel eps = 1/64 and
// right panel eps = 4/N. Paper features: the multi-host systems need
// large N to win; the 2-host crossover sits near N ~ 3e3 for constant
// softening and moves to N ~ 3e4 for eps = 4/N (smaller softening ->
// smaller blocks -> synchronization hurts longer).

#include "bench_common.hpp"

namespace {

using namespace g6;

void run_panel(SofteningLaw law, const TraceScaling& scaling, std::size_t max_n) {
  std::printf("\n-- panel: %s --\n", softening_name(law));
  const SystemConfig sys1 = SystemConfig::cluster(1);
  const SystemConfig sys2 = SystemConfig::cluster(2);
  const SystemConfig sys4 = SystemConfig::cluster(4);

  const std::string tag =
      law == SofteningLaw::kConstant ? "fig15_const" : "fig15_overn";
  TablePrinter table(std::cout,
                     {"N", "Gflops_1host", "Gflops_2host", "Gflops_4host"});
  table.mirror_csv(bench_csv_path(tag));
  table.print_header();

  double cross2 = 0.0, cross4 = 0.0;
  for (std::size_t n : bench::figure_grid(max_n, 6)) {
    const SpeedPoint p1 = measure_speed_synthetic(n, law, sys1, scaling);
    const SpeedPoint p2 = measure_speed_synthetic(n, law, sys2, scaling);
    const SpeedPoint p4 = measure_speed_synthetic(n, law, sys4, scaling);
    table.print_row({TablePrinter::num(static_cast<long long>(n)),
                     TablePrinter::num(p1.gflops()), TablePrinter::num(p2.gflops()),
                     TablePrinter::num(p4.gflops())});
    if (cross2 == 0.0 && p2.gflops() > p1.gflops()) cross2 = static_cast<double>(n);
    if (cross4 == 0.0 && p4.gflops() > p1.gflops()) cross4 = static_cast<double>(n);
  }
  std::printf("crossover (2 hosts beat 1): N ~ %.3g\n", cross2);
  std::printf("crossover (4 hosts beat 1): N ~ %.3g\n", cross4);
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(
      cli.get_int("max-n", 1'048'576, "largest N of the sweep"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  const CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Figure 15: single-cluster speed vs N for 1/2/4 hosts");

  const TraceScaling sc_const =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);
  const TraceScaling sc_overn =
      bench::scaling_for(SofteningLaw::kOverN, copt, recal);

  run_panel(SofteningLaw::kConstant, sc_const, max_n);
  run_panel(SofteningLaw::kOverN, sc_overn, max_n);

  std::printf("\npaper checkpoints: 2-host crossover at N ~ 3e3 (eps=1/64) and\n"
              "~ 3e4 (eps=4/N); inter-host communication is only\n"
              "synchronization (the board network carries the particle data).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
