// Section 5, application 1 — the early Kuiper-belt run [12].
//
// Paper numbers: N = 1.8M planetesimals, 21120 time units, 1.911e10
// individual steps, 16.30 hours wall time including I/O, 33.4 Tflops
// average.
//
// Reproduction: (a) calibrate the blockstep schedule on real scaled-down
// planetesimal disks; (b) replay the paper's published step count through
// the machine model of the tuned full system; (c) also report the
// projection using our own measured step rate.

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto n_paper = static_cast<std::size_t>(
      cli.get_int("n", 1'800'000, "particle count (paper: 1.8M)"));
  const double t_units = cli.get_double("t-units", 21120.0, "span in time units");
  const auto paper_steps = static_cast<unsigned long long>(
      cli.get_double("paper-steps", 1.911e10, "paper's individual step count"));
  if (cli.finish()) return 0;

  print_banner(std::cout, "Sec 5 app: Kuiper-belt planetesimal run (N=1.8M)");

  // --- (a) real scaled-down disks -> schedule statistics ----------------
  obs::log_info("calibration: planetesimal disks ...");
  std::vector<CalibrationPoint> points;
  CalibrationOptions opt;
  opt.eta = 0.02;
  for (std::size_t n : {256u, 512u, 1024u}) {
    Rng rng(1000 + static_cast<unsigned>(n));
    DiskParams disk;
    // Kuiper-belt-like dynamic range: factor ~2 in radius (period factor
    // ~2.8, several block levels) and a stirred eccentricity dispersion.
    disk.r_outer = 2.0;
    disk.ecc_dispersion = 0.05;
    disk.inc_dispersion = 0.025;
    disk.disk_mass = 3e-4;
    const ParticleSet set = make_planetesimal_disk(n, rng, disk);
    const double eps =
        0.5 * disk.r_inner * std::cbrt(disk.disk_mass / static_cast<double>(n) / 3.0);
    CalibrationOptions one = opt;
    one.t_span = 2.0;  // a fraction of an orbit; enough blocksteps to fit
    points.push_back(measure_schedule(set, eps, one));
  }
  const TraceScaling scaling = TraceScaling::fit(points);
  obs::log_info("calibration: R(N)=%.3g*N^%.3f, block=%.3g*N^%.3f of N",
                scaling.steps_rate.coefficient, scaling.steps_rate.exponent,
                scaling.block_fraction.coefficient,
                scaling.block_fraction.exponent);

  const SystemConfig sys = SystemConfig::tuned(4);
  const MachineModel model(sys);

  // --- (b) replay the paper's schedule -----------------------------------
  Rng rng(2003);
  const BlockstepTrace paper_trace = scaling.synthesize_steps(n_paper, paper_steps, rng);
  const auto r = model.run_trace(paper_trace);

  TablePrinter table(std::cout, {"quantity", "paper", "this_model"});
  table.mirror_csv(bench_csv_path("app_kuiper_belt"));
  table.print_header();
  table.print_row({"N", "1800000", TablePrinter::num(static_cast<long long>(n_paper))});
  table.print_row({"individual steps", "1.911e10",
                   TablePrinter::num(static_cast<double>(r.steps))});
  table.print_row({"wall hours", "16.30", TablePrinter::num(r.seconds / 3600.0)});
  table.print_row({"average Tflops (Eq 9)", "33.4",
                   TablePrinter::num(r.paper_speed_flops(n_paper) / 1e12)});
  table.print_row({"steps/second", "3.3e5 (Sec 5)",
                   TablePrinter::num(r.steps_per_second())});

  // --- (c) our own step-rate projection ----------------------------------
  const double our_rate = scaling.steps_per_particle_per_time(n_paper);
  const double our_steps = our_rate * static_cast<double>(n_paper) * t_units;
  std::printf("\nprojection from our measured schedule statistics:\n");
  std::printf("  steps/particle/time-unit at N=1.8M : %.3g\n", our_rate);
  std::printf("  total steps for %g time units      : %.3g (paper: %.3g)\n",
              t_units, our_steps, static_cast<double>(paper_steps));
  std::printf("  (rate differs from the paper's because our integrator settings\n"
              "   — eta=%.3g, dt_max=2^-4 — and disk model are not theirs; the\n"
              "   machine-model Tflops above is the hardware-side reproduction)\n",
              0.02);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
