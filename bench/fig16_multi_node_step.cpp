// Figure 16 — time per particle step, 4-node (single cluster) run.
//
// "This figure clearly shows why the value of N for the crossover is
// rather large. For small N (N < 1e4), the calculation time is inversely
// proportional to N" — the synchronization per blockstep is constant, so
// the per-step cost is ~T_sync / n_block ~ 1/N. The theory curve includes
// the synchronization overhead and reproduces the measured result.

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(
      cli.get_int("max-n", 1'048'576, "largest N of the sweep"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  const CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout, "Figure 16: time per particle step vs N (4 hosts)");

  const SystemConfig sys = SystemConfig::cluster(4);
  const MachineModel model(sys);
  SystemConfig nosync = sys;
  nosync.sync_ops_single_cluster = 0;
  nosync.nic.round_trip_latency_s = 0.0;  // zero-latency what-if
  const MachineModel nosync_model(nosync);

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  TablePrinter table(std::cout, {"N", "measured_us", "theory_us",
                                 "theory_nosync_us", "sync_share_%"});
  table.mirror_csv(bench_csv_path("fig16_multi_node_step"));
  table.print_header();

  for (std::size_t n : log_grid(256, max_n, 4)) {
    const SpeedPoint measured =
        measure_speed_synthetic(n, SofteningLaw::kConstant, sys, scaling);
    const auto mean_block =
        static_cast<std::size_t>(std::max(1.0, scaling.mean_block_size(n)));
    const BlockstepCost c = model.blockstep_cost(mean_block, n);
    const double theory_us = c.total() / static_cast<double>(mean_block) * 1e6;
    const double nosync_us =
        nosync_model.time_per_particle_step(mean_block, n) * 1e6;
    table.print_row(
        {TablePrinter::num(static_cast<long long>(n)),
         TablePrinter::num(measured.time_per_step_s * 1e6),
         TablePrinter::num(theory_us), TablePrinter::num(nosync_us),
         TablePrinter::num(100.0 * c.net_s / c.total())});
  }

  std::printf("\npaper checkpoints: below N ~ 1e4 the per-step time rises as\n"
              "~1/N (latency-bound regime); the sync-aware theory tracks the\n"
              "measured curve; without synchronization the 1/N wall vanishes.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
