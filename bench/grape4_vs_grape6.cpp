// Section 3 — what changed from GRAPE-4 to GRAPE-6, quantified.
//
// GRAPE-4 (Makino et al. 1997, described in Sec 3 of the paper):
//   * 1692 pipeline chips on 36 boards, 4 clusters on ONE host sharing
//     one I/O bus; ~1.08 Tflops peak.
//   * chip: a single pipeline, 2-way VMP, one interaction per 3 clocks at
//     32 MHz; 48 chips per board SHARE one memory (shared j-stream), so a
//     board serves 96 i-particles in parallel and the full machine ~384.
//   * 16 MHz, 32-bit host link.
// GRAPE-6: local j-memory per chip, 6x8-way VMP at 90 MHz, hierarchical
// LVDS network, 16 hosts — the configuration modeled everywhere else in
// this repository.
//
// This bench compares peak speed, degree of parallelism, per-blockstep
// times and the resulting speed-vs-N curves of the two generations using
// the same workload statistics.

#include <cmath>

#include "bench_common.hpp"

namespace {

using namespace g6;

/// Minimal analytic model of GRAPE-4 (single host, 4 clusters).
struct Grape4Model {
  static constexpr double kClockHz = 32.0e6;
  // One j-particle is broadcast to the 48 chips of a board every 6
  // cycles; each chip then retires its 2 virtual-pipeline interactions
  // (one per 3 cycles) -> 96 interactions per board per 6 cycles, which
  // reproduces the 1.08 Tflops peak: 4*9*16 int/cycle * 32 MHz * 57.
  static constexpr double kCyclesPerJ = 6.0;
  static constexpr std::size_t kClusters = 4;
  static constexpr std::size_t kBoardsPerCluster = 9;
  static constexpr std::size_t kIParallelPerCluster = 96;  // 48 chips x 2 VMP
  static constexpr double kPeakFlops = 1.08e12;

  HostModel host = hosts::athlon_xp_1800();  // generously modern host
  DmaModel link{50.0e-6, 16.0e6 * 4.0};      // 16 MHz x 32-bit parallel link
  PacketSizes packets;

  double blockstep_seconds(std::size_t block, std::size_t n_total) const {
    // Each cluster integrates block/4 i-particles against the full j set
    // striped over its 9 boards (shared j-stream per board).
    const std::size_t n_cluster = (block + kClusters - 1) / kClusters;
    const std::size_t passes =
        (n_cluster + kIParallelPerCluster - 1) / kIParallelPerCluster;
    const double n_j_board =
        static_cast<double>(n_total) / static_cast<double>(kBoardsPerCluster);
    const double pass_s = n_j_board * kCyclesPerJ / kClockHz;
    const double grape_s = static_cast<double>(passes) * pass_s;
    // All four clusters share one host and one I/O bus: transfers serialize.
    const double dma_s =
        link.transfer_time(block * packets.j_particle_bytes) +
        link.transfer_time(block * packets.i_particle_bytes) +
        link.transfer_time(block * packets.result_bytes);
    const double host_s =
        static_cast<double>(block) * host.step_time(static_cast<double>(n_total)) +
        host.block_overhead_s;
    return grape_s + dma_s + host_s;
  }

  double speed_flops(const BlockstepTrace& trace) const {
    double seconds = 0.0;
    unsigned long long steps = 0;
    for (const auto& rec : trace.records) {
      seconds += blockstep_seconds(rec.block_size, trace.n_particles);
      steps += rec.block_size;
    }
    return 57.0 * static_cast<double>(trace.n_particles) *
           static_cast<double>(steps) / seconds;
  }
};

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout, "Sec 3: GRAPE-4 vs GRAPE-6");

  const Grape4Model g4;
  const SystemConfig g6sys = SystemConfig::multi_cluster(4);
  const MachineModel g6model(g6sys);

  std::printf("peak speed:       GRAPE-4 %.2f Tflops   GRAPE-6 %.2f Tflops (x%.0f)\n",
              Grape4Model::kPeakFlops / 1e12, g6model.peak_flops() / 1e12,
              g6model.peak_flops() / Grape4Model::kPeakFlops);
  std::printf("i-parallelism:    GRAPE-4 %zu            GRAPE-6 %zu per host row\n",
              Grape4Model::kIParallelPerCluster * Grape4Model::kClusters,
              g6sys.machine.i_parallelism());
  std::printf("memory design:    GRAPE-4 shared j-stream/board; GRAPE-6 chip-local\n");
  std::printf("hosts:            GRAPE-4 one host, one I/O bus; GRAPE-6 16 hosts\n\n");

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  TablePrinter table(std::cout, {"N", "G4_Gflops", "G6_Gflops", "ratio",
                                 "G4_frac_peak", "G6_frac_peak"});
  table.mirror_csv(bench_csv_path("grape4_vs_grape6"));
  table.print_header();

  for (std::size_t n : log_grid(2048, 1'048'576, 3)) {
    Rng rng(31 + static_cast<unsigned>(n));
    const BlockstepTrace trace = scaling.synthesize(n, 1.0, rng);
    const double s4 = g4.speed_flops(trace);
    const SpeedPoint p6 = measure_speed_from_trace(
        trace, softening_for(SofteningLaw::kConstant, n), g6sys);
    table.print_row({TablePrinter::num(static_cast<long long>(n)),
                     TablePrinter::num(s4 / 1e9), TablePrinter::num(p6.gflops()),
                     TablePrinter::num(p6.speed_flops / s4),
                     TablePrinter::num(s4 / Grape4Model::kPeakFlops),
                     TablePrinter::num(p6.speed_flops / g6model.peak_flops())});
  }

  std::printf("\nreading (Sec 3.1): the 0.25um generation buys ~2 orders of\n"
              "magnitude in peak; realizing it required every design change the\n"
              "paper describes — local memory, serial links, multiple hosts —\n"
              "otherwise the single host and its I/O bus cap the speed near the\n"
              "GRAPE-4 level regardless of pipeline count.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
