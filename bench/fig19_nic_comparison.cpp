// Figure 19 — performance tuning by NIC/host swap (Sec 4.4).
//
// "Comparison of the calculation speed with Intel 82540EM (upper curve)
// and NS 83820 (lower curve)": the full 16-node machine with the original
// NS83820+Athlon configuration versus the tuned Intel82540EM+P4 one
// (round-trip latency 200us -> 67us, throughput 60 -> 105 MB/s).
// Paper checkpoints: 50-100% improvement across the range, largest at
// small N; 36.0 Tflops at N = 1.8M with the tuned system. Also prints
// the Tigon 2 middle ground ("somewhat better throughput, but not much
// improvement in latency").

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(
      cli.get_int("max-n", 1'800'000, "largest N of the sweep (paper: 1.8M)"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  const CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Figure 19: NIC comparison on the full machine (16 nodes)");

  SystemConfig original = SystemConfig::multi_cluster(4);  // NS83820 + Athlon
  SystemConfig tigon = original;
  tigon.nic = nics::tigon2();
  const SystemConfig tuned = SystemConfig::tuned(4);  // Intel 82540EM + P4

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  TablePrinter table(std::cout, {"N", "Tflops_NS83820", "Tflops_Tigon2",
                                 "Tflops_Intel", "improvement_%"});
  table.mirror_csv(bench_csv_path("fig19_nic_comparison"));
  table.print_header();

  SpeedPoint last_tuned;
  for (std::size_t n : bench::figure_grid(max_n, 4)) {
    const SpeedPoint po =
        measure_speed_synthetic(n, SofteningLaw::kConstant, original, scaling);
    const SpeedPoint pt =
        measure_speed_synthetic(n, SofteningLaw::kConstant, tigon, scaling);
    const SpeedPoint pi =
        measure_speed_synthetic(n, SofteningLaw::kConstant, tuned, scaling);
    table.print_row(
        {TablePrinter::num(static_cast<long long>(n)),
         TablePrinter::num(po.tflops()), TablePrinter::num(pt.tflops()),
         TablePrinter::num(pi.tflops()),
         TablePrinter::num(100.0 * (pi.tflops() / po.tflops() - 1.0))});
    last_tuned = pi;
  }

  std::printf("\nlargest-N checkpoint: tuned system reaches %.1f Tflops at N=%zu\n"
              "(paper: 36.0 Tflops at N = 1.8M). Improvement is largest at small\n"
              "N where the communication overhead dominates (Sec 4.4).\n",
              last_tuned.tflops(), last_tuned.n);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
