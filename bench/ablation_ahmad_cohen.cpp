// Ablation — Ahmad-Cohen neighbor scheme vs plain individual-timestep
// Hermite (the integrator family of reference [10]).
//
// Both integrate the same Plummer models to the same time with the same
// accuracy parameter; we compare total pairwise work, the number of
// full-N force evaluations (what the GRAPE must compute), and energy
// conservation. The neighbor lists come from the engine's neighbor
// hardware — the GRAPE-6 feature this scheme was co-designed with.

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const double t_end = cli.get_double("t-end", 0.5, "integration span");
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Ablation: Ahmad-Cohen neighbor scheme vs plain Hermite");

  const double eps = 1.0 / 64.0;
  TablePrinter table(std::cout,
                     {"N", "plain_pairs", "ac_pairs", "work_ratio",
                      "reg/irr_steps", "mean_nb", "dEplain", "dEac"});
  table.mirror_csv(bench_csv_path("ablation_ahmad_cohen"));
  table.print_header();

  for (std::size_t n : {128u, 256u, 512u, 1024u}) {
    Rng rng(100 + static_cast<unsigned>(n));
    const ParticleSet s = make_plummer(n, rng);
    const double e0 = compute_energy(s.bodies(), eps).total();

    DirectForceEngine e1(eps);
    HermiteIntegrator plain(s, e1);
    plain.evolve(t_end);
    const double de_plain = std::fabs(
        (compute_energy(plain.state_at_current_time().bodies(), eps).total() - e0) /
        e0);
    const auto plain_pairs = e1.interactions();

    DirectForceEngine e2(eps);
    AhmadCohenConfig acfg;
    AhmadCohenIntegrator ac(s, e2, acfg);
    ac.evolve(t_end);
    const double de_ac = std::fabs(
        (compute_energy(ac.state_at_current_time().bodies(), eps).total() - e0) /
        e0);
    const auto ac_pairs = ac.irregular_interactions() + ac.regular_interactions();

    table.print_row(
        {TablePrinter::num(static_cast<long long>(n)),
         TablePrinter::num(static_cast<double>(plain_pairs)),
         TablePrinter::num(static_cast<double>(ac_pairs)),
         TablePrinter::num(static_cast<double>(ac_pairs) /
                           static_cast<double>(plain_pairs)),
         TablePrinter::num(static_cast<double>(ac.regular_steps()) /
                           static_cast<double>(ac.irregular_steps())),
         TablePrinter::num(ac.mean_neighbor_count()),
         TablePrinter::num(de_plain), TablePrinter::num(de_ac)});
  }

  std::printf("\nreading: the neighbor scheme needs a fraction of the pairwise\n"
              "work of plain Hermite at comparable energy error, and the\n"
              "fraction improves with N — the reason NBODY-class codes (and the\n"
              "GRAPE-6 neighbor hardware) use it.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
