// Section 5, application 2 — the binary black hole run.
//
// Paper numbers: standard Plummer model with 2M particles plus two BH
// particles of 0.5% of the total mass each; 36 time units; 4.143e10
// individual steps; 37.19 hours including I/O; 35.3 Tflops average — the
// best application performance achieved on GRAPE-6.

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto n_paper = static_cast<std::size_t>(
      cli.get_int("n", 2'000'000, "particle count (paper: 2M)"));
  const double t_units = cli.get_double("t-units", 36.0, "span in time units");
  const auto paper_steps = static_cast<unsigned long long>(
      cli.get_double("paper-steps", 4.143e10, "paper's individual step count"));
  if (cli.finish()) return 0;

  print_banner(std::cout, "Sec 5 app: binary black hole in a 2M-body cluster");

  // Schedule statistics from real scaled-down BH-binary clusters. The two
  // massive particles force small timesteps in the core — the workload
  // that makes individual timesteps mandatory (Sec 1).
  obs::log_info("calibration: BH-binary clusters ...");
  std::vector<CalibrationPoint> points;
  for (std::size_t n : {256u, 512u, 1024u}) {
    Rng rng(2000 + static_cast<unsigned>(n));
    const ParticleSet set = make_plummer_with_bh_binary(n, rng, 0.005, 0.5);
    CalibrationOptions one;
    one.t_span = 0.25;
    points.push_back(measure_schedule(set, 1.0 / 64.0, one));
  }
  const TraceScaling scaling = TraceScaling::fit(points);
  obs::log_info("calibration: R(N)=%.3g*N^%.3f, block=%.3g*N^%.3f of N",
                scaling.steps_rate.coefficient, scaling.steps_rate.exponent,
                scaling.block_fraction.coefficient,
                scaling.block_fraction.exponent);

  const SystemConfig sys = SystemConfig::tuned(4);
  const MachineModel model(sys);

  Rng rng(1995);
  const BlockstepTrace paper_trace =
      scaling.synthesize_steps(n_paper, paper_steps, rng);
  const auto r = model.run_trace(paper_trace);

  TablePrinter table(std::cout, {"quantity", "paper", "this_model"});
  table.mirror_csv(bench_csv_path("app_binary_black_hole"));
  table.print_header();
  table.print_row({"N", "2000000", TablePrinter::num(static_cast<long long>(n_paper))});
  table.print_row({"individual steps", "4.143e10",
                   TablePrinter::num(static_cast<double>(r.steps))});
  table.print_row({"wall hours", "37.19", TablePrinter::num(r.seconds / 3600.0)});
  table.print_row({"average Tflops (Eq 9)", "35.3",
                   TablePrinter::num(r.paper_speed_flops(n_paper) / 1e12)});
  table.print_row({"steps/second", "3.1e5",
                   TablePrinter::num(r.steps_per_second())});

  const double our_rate = scaling.steps_per_particle_per_time(n_paper);
  std::printf("\nprojection from our measured schedule statistics:\n");
  std::printf("  steps/particle/time-unit at N=2M : %.3g\n", our_rate);
  std::printf("  total steps for %g time units    : %.3g (paper: %.3g)\n", t_units,
              our_rate * static_cast<double>(n_paper) * t_units,
              static_cast<double>(paper_steps));
  std::printf("\npaper context: largest prior direct-summation run without GRAPE\n"
              "was N = 32768 [17]; GRAPE-6 runs 2M — a factor ~60 in N.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
