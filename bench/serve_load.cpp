// Remote-serving load — jobs/hour and wait percentiles over the wire
// (docs/SERVING.md, "Wire protocol").
//
// The GRAPE-6 facility's jobs arrived from users' workstations, not from
// a manifest on the host (PAPER.md Sec 5). This bench measures what the
// software twin's remote path delivers: a WireServer fronting one
// GrapeService on a unix socket, driven by loadgen-style clients from
// this process, swept over the connection count. Same job mix every row,
// so the row-to-row delta is the cost (or not) of socket multiplexing:
// the wire is control-plane only — quanta parallelize underneath
// run_rounds either way — so jobs/hour should hold flat while the
// submit/subscribe/drain RPCs spread over more connections.
//
// For each connection count: jobs/hour (completed / scheduler makespan),
// p50/p95/p99 wait (submit -> first quantum) as streamed back in
// terminal events, total request frames served, and events pushed. Rows
// mirror to bench_out/serve_load.csv and the merged Eq 10 + serve.* +
// wire.* counters export via --metrics-out (schema grape6-metrics-v1)
// for scripts/snapshot_serve_bench.py ("remote" section).

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace g6;

serve::ServiceConfig service_config(std::size_t boards, std::size_t quantum,
                                    std::size_t jobs) {
  serve::ServiceConfig cfg;
  cfg.machine.boards_per_host = boards;
  cfg.machine.hosts_per_cluster = 1;
  cfg.machine.clusters = 1;
  cfg.max_queue_depth = jobs + 4;
  cfg.quantum_blocksteps = quantum;
  return cfg;
}

/// Same deterministic mix for every row: mostly 1-board batch jobs, a
/// quarter interactive, a third carrying autoscaling lease bounds — the
/// shapes the wire has to carry (priorities, bounds) all exercised.
std::vector<serve::JobSpec> make_jobs(std::size_t jobs, std::size_t n,
                                      double t_end) {
  std::vector<serve::JobSpec> specs;
  for (std::size_t i = 0; i < jobs; ++i) {
    serve::JobSpec s;
    s.name = "load-" + std::to_string(i);
    s.n = n;
    s.t_end = t_end;
    s.seed = static_cast<unsigned>(100 + i);
    s.boards = 1;
    if (i % 4 == 1) s.priority = serve::Priority::kInteractive;
    if (i % 3 == 2) {
      s.boards_min = 1;
      s.boards_max = 2;
    }
    specs.push_back(s);
  }
  return specs;
}

struct RowResult {
  std::size_t completed = 0;
  std::vector<double> wait_s;
};

/// Drive one served run: submit the mix round-robin over `connections`
/// clients, stream events on client 0 until every accepted job's
/// terminal arrived, then drain. Wait times come from the terminal
/// events — the same numbers a remote tenant would see.
RowResult drive_clients(const std::string& endpoint,
                        const std::vector<serve::JobSpec>& specs,
                        std::size_t connections) {
  std::vector<std::unique_ptr<wire::RemoteClient>> clients;
  for (std::size_t i = 0; i < connections; ++i) {
    clients.push_back(std::make_unique<wire::RemoteClient>(endpoint));
  }
  clients[0]->subscribe(/*snapshots=*/false, /*all_jobs=*/true);

  std::map<serve::JobId, int> terminals;
  std::size_t pending = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const serve::SubmitResult r = clients[i % connections]->submit(specs[i]);
    if (r) ++pending;
  }
  clients[0]->drain();

  RowResult row;
  while (pending > 0) {
    std::optional<wire::WireEvent> ev = clients[0]->next_event(true);
    if (!ev) {
      throw std::runtime_error("server EOF with terminals outstanding");
    }
    if (ev->event != "terminal") continue;
    const auto job = static_cast<serve::JobId>(
        ev->root.at("job").as_number());
    if (++terminals[job] > 1) {
      throw std::runtime_error("duplicate terminal event");
    }
    --pending;
    const obs::JsonValue* rep = ev->root.find("report");
    if (rep == nullptr) continue;
    const obs::JsonValue* state = rep->find("state");
    if (state != nullptr && state->as_string() == "completed") {
      ++row.completed;
      row.wait_s.push_back(rep->at("wait_s").as_number());
    }
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const auto boards = static_cast<std::size_t>(
      cli.get_int("boards", 4, "boards in the shared machine"));
  const auto n =
      static_cast<std::size_t>(cli.get_int("n", 48, "particles per job"));
  const double t_end =
      cli.get_double("t-end", 0.0625, "integration span per job");
  const auto quantum = static_cast<std::size_t>(
      cli.get_int("quantum", 4, "scheduling quantum in blocksteps"));
  const auto jobs = static_cast<std::size_t>(
      cli.get_int("jobs", 12, "jobs per connection-count row"));
  const std::string socket_prefix = cli.get_string(
      "socket-prefix", "serve_load", "unix socket path prefix");
  const std::string csv =
      cli.get_string("csv", "bench_out/serve_load.csv", "CSV mirror path");
  const g6::bench::TelemetryFlags tf = g6::bench::telemetry_flags(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Remote serving load: jobs/hour and wait percentiles vs "
               "connection count");

  TablePrinter table(std::cout,
                     {"connections", "jobs", "completed", "requests", "events",
                      "jobs_per_hour", "p50_wait_s", "p95_wait_s",
                      "p99_wait_s"});
  table.mirror_csv(csv);
  table.print_header();

  const std::vector<serve::JobSpec> specs = make_jobs(jobs, n, t_end);
  // The server loop needs a thread of its own while this thread plays
  // the remote tenants, and the global pool may be running serial
  // (G6_EXEC_THREADS=1 runs pool tasks inline — the server would never
  // yield back). A private 2-thread pool guarantees one real worker;
  // quanta still parallelize on the global pool underneath run_rounds.
  exec::ThreadPool server_pool(2);

  obs::Eq10Accumulator merged;
  for (const std::size_t connections : {1u, 2u, 4u, 8u}) {
    serve::GrapeService service(service_config(boards, quantum, jobs));
    const std::string sock_path =
        socket_prefix + "_" + std::to_string(connections) + ".sock";
    std::remove(sock_path.c_str());
    wire::WireServer server(service, "unix:" + sock_path);

    std::atomic<bool> stop{false};
    exec::TaskGroup tg(server_pool);
    tg.run([&server, &stop] { server.run(&stop); });

    // Wall clock spans connect -> last terminal: the remote makespan,
    // socket overhead included (run_until_drained's makespan_s never
    // accumulates on the wire-driven round-at-a-time path).
    const double t0 = obs::monotonic_seconds();
    RowResult row;
    try {
      row = drive_clients("unix:" + sock_path, specs, connections);
    } catch (...) {
      stop = true;  // unblock run() before TaskGroup's destructor joins
      throw;
    }
    const double wall_s = obs::monotonic_seconds() - t0;
    tg.wait();  // drain-path exit: every event flushed, run() returned
    std::remove(sock_path.c_str());

    const serve::ServiceStats& st = service.stats();
    const wire::WireServerStats& ws = server.stats();
    const double jobs_per_hour =
        wall_s > 0.0
            ? 3600.0 * static_cast<double>(row.completed) / wall_s
            : 0.0;
    merged.merge(st.eq10);

    table.print_row(
        {TablePrinter::num(static_cast<long long>(connections)),
         TablePrinter::num(static_cast<long long>(jobs)),
         TablePrinter::num(static_cast<long long>(row.completed)),
         TablePrinter::num(static_cast<long long>(ws.requests)),
         TablePrinter::num(static_cast<long long>(ws.events)),
         TablePrinter::num(jobs_per_hour),
         TablePrinter::num(percentile(row.wait_s, 50.0)),
         TablePrinter::num(percentile(row.wait_s, 95.0)),
         TablePrinter::num(percentile(row.wait_s, 99.0))});
  }

  g6::bench::export_telemetry(tf, &merged);

  std::printf("\nreading: requests is exact (jobs + subscribe + drain) at\n"
              "every row — the wire accepts the whole mix regardless of\n"
              "fan-in; jobs/hour holding flat across connection counts is\n"
              "the claim that socket multiplexing is control-plane only.\n"
              "events varies with poll timing (progress frames coalesce)\n"
              "and is trend data, not a gate.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
