// Figure 14 — CPU time per particle step vs N, single node.
//
// Three curves as in the paper: the trace-driven "measured" result, a fit
// with constant T_host (dashed line), and the empirical cache-aware host
// model (dotted line). The paper's discussion points: near-constant cost
// at intermediate N, growth ~ N at large N (GRAPE pass time), and the
// DMA-overhead knee below N ~ 1000.

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(
      cli.get_int("max-n", 1'048'576, "largest N of the sweep"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  const CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Figure 14: CPU time per particle step vs N (1 host, 4 boards)");

  const SystemConfig sys = SystemConfig::single_host();
  const MachineModel model(sys);
  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  // Constant-T_host variant of the model (the dashed curve).
  SystemConfig flat_sys = sys;
  flat_sys.host.t_fast_s = flat_sys.host.t_slow_s;
  const MachineModel flat_model(flat_sys);

  TablePrinter table(std::cout, {"N", "measured_us", "flat_model_us",
                                 "cache_model_us", "mean_block"});
  table.mirror_csv(bench_csv_path("fig14_time_per_step"));
  table.print_header();

  for (std::size_t n : log_grid(128, max_n, 4)) {
    const SpeedPoint measured =
        measure_speed_synthetic(n, SofteningLaw::kConstant, sys, scaling);
    const auto mean_block = static_cast<std::size_t>(
        std::max(1.0, scaling.mean_block_size(n)));
    const double flat_us =
        flat_model.time_per_particle_step(mean_block, n) * 1e6;
    const double cache_us = model.time_per_particle_step(mean_block, n) * 1e6;
    table.print_row({TablePrinter::num(static_cast<long long>(n)),
                     TablePrinter::num(measured.time_per_step_s * 1e6),
                     TablePrinter::num(flat_us), TablePrinter::num(cache_us),
                     TablePrinter::num(static_cast<long long>(mean_block))});
  }

  std::printf("\npaper checkpoints: cache-aware model tracks the measured curve;\n"
              "for N < 1000 the measured cost exceeds both models (DMA setup\n"
              "overhead, Sec 4.1); large-N growth is the GRAPE O(N) pass time.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
