// Section 1/2 headline arithmetic + emulator micro-kernels.
//
// Prints the peak-speed table of the machine hierarchy (chip 30.8 Gflops,
// host 3.94 Tflops, cluster 15.76 Tflops, system 63.04 Tflops) and then
// runs google-benchmark microbenchmarks of the emulation kernels so the
// cost of bit-level emulation itself is documented.

#include <benchmark/benchmark.h>

#include <iostream>

#include "core/grape6.hpp"

namespace {

using namespace g6;

void print_peak_table() {
  print_banner(std::cout, "GRAPE-6 peak-speed arithmetic (57 flops/interaction)");
  const MachineConfig mc = MachineConfig::full_system();
  std::printf("pipeline:  1 interaction/cycle @ %.0f MHz = %6.2f Gflops\n",
              mc.clock_hz / 1e6, mc.clock_hz * units::kFlopsPerInteraction / 1e9);
  std::printf("chip:      %zu pipelines (x%zu VMP)      = %6.2f Gflops (paper: 30.8)\n",
              mc.pipelines_per_chip, mc.vmp_ways, mc.chip_peak_flops() / 1e9);
  std::printf("module:    %zu chips                    = %6.2f Gflops\n",
              mc.chips_per_module,
              mc.chip_peak_flops() * static_cast<double>(mc.chips_per_module) / 1e9);
  std::printf("board:     %zu modules (%zu chips)       = %6.2f Gflops\n",
              mc.modules_per_board, mc.chips_per_board(),
              mc.chip_peak_flops() * static_cast<double>(mc.chips_per_board()) / 1e9);
  std::printf("host:      %zu boards (%zu chips)       = %6.2f Tflops\n",
              mc.boards_per_host, mc.chips_per_host(),
              mc.chip_peak_flops() * static_cast<double>(mc.chips_per_host()) / 1e12);
  std::printf("cluster:   %zu hosts                    = %6.2f Tflops\n",
              mc.hosts_per_cluster,
              mc.chip_peak_flops() *
                  static_cast<double>(mc.chips_per_host() * mc.hosts_per_cluster) /
                  1e12);
  std::printf("system:    %zu clusters (%zu chips)    = %6.2f Tflops (paper: 63.04)\n\n",
              mc.clusters, mc.total_chips(), mc.peak_flops() / 1e12);
}

void BM_QuantizePipelineFormat(benchmark::State& state) {
  const FloatFormat f = formats::pipeline();
  double x = 1.234567890123;
  for (auto _ : state) {
    x = f.quantize(x * 1.0000001);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_QuantizePipelineFormat);

void BM_PairwiseDouble(benchmark::State& state) {
  Force f;
  const Vec3 xi{0.1, 0.2, 0.3}, vi{0.0, 0.1, 0.0};
  const Vec3 xj{1.0, -0.5, 0.25}, vj{-0.1, 0.0, 0.05};
  for (auto _ : state) {
    accumulate_pairwise(xi, vi, xj, vj, 1e-3, 1e-4, f);
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_PairwiseDouble);

void BM_PipelineInteraction(benchmark::State& state) {
  const bool exact = state.range(0) != 0;
  const NumberFormats fmt = exact ? NumberFormats::exact() : NumberFormats{};
  ForcePipeline pipe(fmt);
  PredictorUnit unit(fmt);
  JParticle jp;
  jp.mass = 1e-3;
  jp.pos = {1.0, -0.5, 0.25};
  jp.vel = {-0.1, 0.0, 0.05};
  const StoredJParticle stored = quantize_j_particle(jp, 0, fmt);
  const auto pj = unit.predict(stored, 0.0);
  PredictedState ip;
  ip.index = 1;
  ip.pos = {0.1, 0.2, 0.3};
  const IParticlePacket pkt = quantize_i_particle(ip, fmt);
  HwAccumulators acc;
  acc.reset({4, 8, 4});
  for (auto _ : state) {
    pipe.interact(pj, pkt, 1e-4, acc);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PipelineInteraction)->Arg(0)->Arg(1)
    ->ArgNames({"exact"});

void BM_PredictorPipeline(benchmark::State& state) {
  const NumberFormats fmt;
  PredictorUnit unit(fmt);
  JParticle jp;
  jp.mass = 1e-3;
  jp.pos = {1.0, -0.5, 0.25};
  jp.vel = {-0.1, 0.0, 0.05};
  jp.acc = {0.01, 0.0, -0.01};
  const StoredJParticle stored = quantize_j_particle(jp, 0, fmt);
  double t = 0.0;
  for (auto _ : state) {
    t = t >= 0.25 ? 0.0 : t + 1.0 / 4096.0;  // stay within the dt range
    benchmark::DoNotOptimize(unit.predict(stored, t));
  }
}
BENCHMARK(BM_PredictorPipeline);

void BM_BlockFloatAdd(benchmark::State& state) {
  BlockFloatAccumulator acc(8);
  double x = 0.001;
  for (auto _ : state) {
    acc.add(x);
    x = -x * 1.0000001;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_BlockFloatAdd);

// Whole-chip pass (48-slot i-block against a populated j-memory) in
// scalar vs batched pipeline mode. The items/s ratio between the two rows
// is the fast-path speedup gated by scripts/bench_regress.py.
void BM_ChipPass(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const std::size_t n_j = static_cast<std::size_t>(state.range(1));
  MachineConfig mc;
  mc.pipeline_mode = batched ? PipelineMode::kBatched : PipelineMode::kScalar;
  const NumberFormats fmt;
  Chip chip(mc, fmt);
  Rng rng(7);
  const ParticleSet set = make_plummer(n_j + 48, rng);
  chip.reserve_slots(n_j);
  for (std::size_t s = 0; s < n_j; ++s) {
    JParticle jp;
    jp.mass = set[s].mass;
    jp.pos = set[s].pos;
    jp.vel = set[s].vel;
    chip.write(s, quantize_j_particle(jp, static_cast<std::uint32_t>(s), fmt));
  }
  std::vector<IParticlePacket> iblock(mc.i_parallelism());
  for (std::size_t k = 0; k < iblock.size(); ++k) {
    PredictedState p;
    p.pos = set[n_j + k].pos;
    p.vel = set[n_j + k].vel;
    p.index = static_cast<std::uint32_t>(n_j + k);
    iblock[k] = quantize_i_particle(p, fmt);
  }
  std::vector<HwAccumulators> out(iblock.size());
  for (auto _ : state) {
    for (auto& a : out) a.reset({4, 8, 4});
    chip.run_pass(0.0, iblock, 1e-4, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_j * iblock.size()));
}
BENCHMARK(BM_ChipPass)
    ->Args({0, 512})
    ->Args({1, 512})
    ->ArgNames({"batched", "nj"});

void BM_OctreeBuild(benchmark::State& state) {
  Rng rng(1);
  const ParticleSet set = make_plummer(static_cast<std::size_t>(state.range(0)), rng);
  Octree tree;
  for (auto _ : state) {
    tree.build(set.bodies());
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OctreeBuild)->Arg(1024)->Arg(8192);

void BM_OctreeForce(benchmark::State& state) {
  Rng rng(2);
  const ParticleSet set = make_plummer(8192, rng);
  Octree tree;
  tree.build(set.bodies());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.force_at(set[i].pos, 0.6, 1e-4, i));
    i = (i + 1) % set.size();
  }
}
BENCHMARK(BM_OctreeForce);

void BM_DirectBlockForce(benchmark::State& state) {
  Rng rng(3);
  const ParticleSet set = make_plummer(1024, rng);
  std::vector<JParticle> js(set.size());
  std::vector<PredictedState> block(48);
  for (std::size_t k = 0; k < set.size(); ++k) {
    js[k].mass = set[k].mass;
    js[k].pos = set[k].pos;
    js[k].vel = set[k].vel;
  }
  for (std::size_t k = 0; k < block.size(); ++k) {
    block[k] = {set[k].pos, set[k].vel, set[k].mass, static_cast<std::uint32_t>(k)};
  }
  DirectForceEngine engine(1.0 / 64.0);
  engine.load_particles(js);
  std::vector<Force> out(block.size());
  for (auto _ : state) {
    engine.compute_forces(0.0, block, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 48 * (set.size() - 1));
}
BENCHMARK(BM_DirectBlockForce);

}  // namespace

int main(int argc, char** argv) {
  print_peak_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
