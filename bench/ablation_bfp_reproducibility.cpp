// Ablation — block floating point vs conventional floating-point
// accumulation (Sec 3.4 design choice).
//
// The paper: "it is quite useful to be able to obtain exactly the same
// results on machines with different sizes, since it makes the validation
// of the result much simpler." We demonstrate both halves:
//   1. with BFP accumulation, the emulated machine produces bit-identical
//      trajectories for 1, 2 and 4 hosts;
//   2. with ordinary floating-point summation the partial sums depend on
//      the partitioning (we sum the same interaction list in chip order
//      for different chip counts and report the spread).

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 96, "particle count"));
  if (cli.finish()) return 0;

  print_banner(std::cout, "Ablation: block floating point reproducibility (Sec 3.4)");

  Rng rng(3);
  const ParticleSet initial = make_plummer(n, rng);

  // --- 1: end-to-end bitwise identity across machine sizes --------------
  TablePrinter table(std::cout, {"hosts", "steps", "x0_final", "bitwise_equal"});
  table.mirror_csv(bench_csv_path("ablation_bfp_reproducibility"));
  table.print_header();

  double reference = 0.0;
  for (std::size_t hosts : {1u, 2u, 4u}) {
    VirtualClusterConfig cfg;
    cfg.system = SystemConfig::cluster(hosts);
    cfg.system.machine.boards_per_host = 1;
    VirtualCluster cluster(initial, cfg);
    cluster.evolve(0.125);
    const double x0 = cluster.particle(0).pos.x;
    if (hosts == 1) reference = x0;
    table.print_row({TablePrinter::num(static_cast<long long>(hosts)),
                     TablePrinter::num(static_cast<double>(cluster.total_steps())),
                     TablePrinter::num(x0), x0 == reference ? "yes" : "NO"});
  }

  // --- 2: plain floating-point partial sums depend on partitioning ------
  std::printf("\nfloating-point (non-BFP) accumulation of one force, split over\n"
              "different chip counts (same addends, different partial-sum order):\n");
  std::vector<double> addends;
  {
    Rng arng(7);
    for (std::size_t j = 0; j < 4096; ++j) {
      addends.push_back(arng.gaussian() * std::exp(arng.uniform(-25.0, 3.0)));
    }
  }
  double first = 0.0;
  for (std::size_t chips : {1u, 4u, 32u, 128u}) {
    std::vector<double> partial(chips, 0.0);
    for (std::size_t j = 0; j < addends.size(); ++j) {
      partial[j % chips] += addends[j];  // per-chip running sum
    }
    double total = 0.0;
    for (double p : partial) total += p;
    if (chips == 1) first = total;
    std::printf("  %4zu chips: sum = %.17g   diff vs 1 chip = %.3g\n", chips, total,
                total - first);
  }

  // And the BFP control: identical mantissas for any partitioning.
  std::printf("\nblock floating-point control (same addends):\n");
  long long ref_mant = 0;
  for (std::size_t chips : {1u, 4u, 32u, 128u}) {
    std::vector<BlockFloatAccumulator> partial(chips, BlockFloatAccumulator(6));
    for (std::size_t j = 0; j < addends.size(); ++j) {
      partial[j % chips].add(addends[j]);
    }
    BlockFloatAccumulator total(6);
    for (const auto& p : partial) total.merge(p);
    if (chips == 1) ref_mant = total.mantissa();
    std::printf("  %4zu chips: mantissa = %lld   %s\n", chips,
                static_cast<long long>(total.mantissa()),
                total.mantissa() == ref_mant ? "(identical)" : "(DIFFERENT!)");
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
