// Figure 18 — time per particle step, full-machine (16-node, 4-cluster)
// run. Same presentation as Fig 16; the theory curve additionally
// accounts for the inter-cluster particle exchange. The 1/N latency wall
// extends to N ~ 1e5 — "the main bottleneck is again the synchronization
// time".

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(
      cli.get_int("max-n", 2'097'152, "largest N of the sweep"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  const CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Figure 18: time per particle step vs N (16 nodes, 4 clusters)");

  const SystemConfig sys = SystemConfig::multi_cluster(4);
  const MachineModel model(sys);
  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  TablePrinter table(std::cout, {"N", "measured_us", "theory_us", "net_share_%",
                                 "grape_share_%"});
  table.mirror_csv(bench_csv_path("fig18_multi_cluster_step"));
  table.print_header();

  for (std::size_t n : log_grid(1024, max_n, 4)) {
    const SpeedPoint measured =
        measure_speed_synthetic(n, SofteningLaw::kConstant, sys, scaling);
    const auto mean_block =
        static_cast<std::size_t>(std::max(1.0, scaling.mean_block_size(n)));
    const BlockstepCost c = model.blockstep_cost(mean_block, n);
    table.print_row({TablePrinter::num(static_cast<long long>(n)),
                     TablePrinter::num(measured.time_per_step_s * 1e6),
                     TablePrinter::num(c.total() / static_cast<double>(mean_block) * 1e6),
                     TablePrinter::num(100.0 * c.net_s / c.total()),
                     TablePrinter::num(100.0 * c.grape_s / c.total())});
  }

  std::printf("\npaper checkpoints: per-step time ~ 1/N for N < 1e5 (the\n"
              "synchronization-dominated regime, worse than Fig 16 because the\n"
              "multi-cluster code pays more and costlier sync operations).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
