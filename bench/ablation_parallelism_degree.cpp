// Ablation — degree of i-parallelism (Sec 3.4 memory-architecture
// decision).
//
// GRAPE-4 shared one memory among 48 chips (96 i-particles in parallel);
// scaling that design to GRAPE-6 speeds would have pushed the degree of
// parallelism to ~1000, "too large if we want to obtain a reasonable
// performance for simulations of star clusters with small, high-density
// cores". The local-memory design holds it at 48 per host row.
//
// With fixed total throughput, a machine that processes D i-particles in
// parallel spends ceil(n_b / D) * D * N interaction slots on a block of
// n_b: efficiency = n_b / (ceil(n_b/D) * D). We replay calibrated
// blockstep schedules against a sweep of D.

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Ablation: degree of hardware parallelism vs efficiency (Sec 3.4)");

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  const std::size_t degrees[] = {48, 96, 192, 384, 768, 1536, 6144};
  std::vector<std::string> cols = {"N", "mean_block"};
  for (std::size_t d : degrees) cols.push_back("eff_D=" + std::to_string(d));
  TablePrinter table(std::cout, cols);
  table.mirror_csv(bench_csv_path("ablation_parallelism_degree"));
  table.print_header();

  for (std::size_t n : {2048u, 16384u, 131072u, 1048576u}) {
    Rng rng(17 + static_cast<unsigned>(n));
    const BlockstepTrace trace = scaling.synthesize(n, 1.0, rng);

    std::vector<std::string> row = {
        TablePrinter::num(static_cast<long long>(n)),
        TablePrinter::num(trace.mean_block_size())};
    for (std::size_t d : degrees) {
      unsigned long long used = 0, busy = 0;
      for (const auto& rec : trace.records) {
        const unsigned long long passes = (rec.block_size + d - 1) / d;
        used += rec.block_size;
        busy += passes * d;
      }
      row.push_back(TablePrinter::num(static_cast<double>(used) /
                                      static_cast<double>(busy)));
    }
    table.print_row(row);
  }

  std::printf("\nreading: at GRAPE-6's D=48 per host the pipelines stay busy even\n"
              "for modest N; at D ~ 1000+ (the shared-memory design scaled up)\n"
              "small blocks waste most of the hardware — the paper's reason for\n"
              "moving the j-memory onto the chip.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
