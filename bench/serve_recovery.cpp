// Durable-serving overhead and recovery cost (docs/RELIABILITY.md,
// "Serving durability").
//
// Two questions a facility operator asks before turning the journal on:
//
//   1. What does durability cost while nothing goes wrong? Rows sweep
//      the checkpoint cadence (checkpoint_every_quanta 0, 1, 4, 16)
//      over the same job set, against a volatile baseline — the
//      makespan delta is the fsync'd write-ahead journal plus periodic
//      per-job checkpoints.
//   2. How long does --recover take as the journal grows? Rows sweep
//      the job count at cadence 1 and time the journal replay that
//      rebuilds the service (replay only — the resumed jobs' remaining
//      integration is the same work either way).
//
// Rows mirror to bench_out/serve_recovery.csv for
// scripts/snapshot_serve_bench.py; the deterministic columns (completed,
// checkpoints, journal_records) are regression-gated via
// scripts/bench_regress.py, the wall-clock ones are trend data.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace g6;
namespace fs = std::filesystem;

serve::ServiceConfig service_config(std::size_t boards, std::size_t quantum,
                                    std::size_t jobs) {
  serve::ServiceConfig cfg;
  cfg.machine.boards_per_host = boards;
  cfg.machine.hosts_per_cluster = 1;
  cfg.machine.clusters = 1;
  cfg.max_queue_depth = jobs + 4;
  cfg.quantum_blocksteps = quantum;
  return cfg;
}

std::vector<serve::JobSpec> make_jobs(std::size_t jobs, std::size_t n,
                                      double t_end) {
  std::vector<serve::JobSpec> specs;
  for (std::size_t i = 0; i < jobs; ++i) {
    serve::JobSpec s;
    s.name = std::string("job-") + std::to_string(i);
    s.n = n;
    s.t_end = t_end;
    s.seed = static_cast<unsigned>(300 + i);
    specs.push_back(s);
  }
  return specs;
}

/// Journal stats readable without serve-internal headers: complete lines
/// and how many of them are checkpoint records.
struct JournalShape {
  long long records = 0;
  long long checkpoints = 0;
};

JournalShape journal_shape(const std::string& path) {
  JournalShape shape;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    ++shape.records;
    if (line.find("\"type\":\"checkpointed\"") != std::string::npos) {
      ++shape.checkpoints;
    }
  }
  return shape;
}

struct RunResult {
  double makespan_s = 0.0;
  std::uint64_t completed = 0;
  JournalShape journal;
};

RunResult run_service(serve::ServiceConfig cfg,
                      const std::vector<serve::JobSpec>& specs,
                      const fs::path& scratch, std::uint64_t ckpt_every,
                      bool durable) {
  if (durable) {
    fs::create_directories(scratch / "ckpts");
    cfg.durability.journal_path = (scratch / "serve.wal").string();
    cfg.durability.checkpoint_dir = (scratch / "ckpts").string();
    cfg.durability.checkpoint_every_quanta = ckpt_every;
  }
  serve::GrapeService service(cfg);
  serve::ServeClient client = service.client();
  for (const serve::JobSpec& spec : specs) client.submit(spec);
  service.drain();
  service.run_until_drained();

  RunResult r;
  r.makespan_s = service.stats().makespan_s;
  r.completed = service.stats().completed;
  if (durable) r.journal = journal_shape(cfg.durability.journal_path);
  return r;
}

double replay_seconds(const std::string& journal_path) {
  const auto t0 = std::chrono::steady_clock::now();
  serve::RecoveryInfo info;
  const auto service = serve::GrapeService::recover(journal_path, &info);
  const auto t1 = std::chrono::steady_clock::now();
  (void)service;  // replay cost only; there is no work left to resume
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const auto boards = static_cast<std::size_t>(
      cli.get_int("boards", 4, "boards in the shared machine"));
  const auto n =
      static_cast<std::size_t>(cli.get_int("n", 48, "particles per job"));
  const double t_end =
      cli.get_double("t-end", 0.0625, "integration span per job");
  const auto quantum = static_cast<std::size_t>(
      cli.get_int("quantum", 2, "scheduling quantum in blocksteps"));
  const auto jobs = static_cast<std::size_t>(
      cli.get_int("jobs", 8, "jobs in the overhead sweep"));
  const std::string csv = cli.get_string(
      "csv", "bench_out/serve_recovery.csv", "CSV mirror path");
  const g6::bench::TelemetryFlags tf = g6::bench::telemetry_flags(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Durable serving: checkpoint overhead and recovery cost");

  const fs::path scratch_root =
      fs::temp_directory_path() / "g6_serve_recovery_bench";
  fs::remove_all(scratch_root);

  TablePrinter table(std::cout,
                     {"config", "ckpt_every", "jobs", "completed",
                      "checkpoints", "journal_records", "makespan_s",
                      "overhead_pct", "recover_ms"});
  table.mirror_csv(csv);
  table.print_header();

  // Phase 1: durability overhead vs checkpoint cadence, same job set.
  const std::vector<serve::JobSpec> specs = make_jobs(jobs, n, t_end);
  const RunResult volatile_run = run_service(
      service_config(boards, quantum, jobs), specs, scratch_root, 0, false);
  table.print_row(
      {"volatile", "-", TablePrinter::num(static_cast<long long>(jobs)),
       TablePrinter::num(static_cast<long long>(volatile_run.completed)), "0",
       "0", TablePrinter::num(volatile_run.makespan_s), "0", "-"});

  for (const std::uint64_t every : {0, 1, 4, 16}) {
    const fs::path scratch =
        scratch_root / ("every_" + std::to_string(every));
    const RunResult r = run_service(service_config(boards, quantum, jobs),
                                    specs, scratch, every, true);
    const double overhead =
        volatile_run.makespan_s > 0.0
            ? 100.0 * (r.makespan_s - volatile_run.makespan_s) /
                  volatile_run.makespan_s
            : 0.0;
    const double recover_s = replay_seconds((scratch / "serve.wal").string());
    table.print_row(
        {"durable", TablePrinter::num(static_cast<long long>(every)),
         TablePrinter::num(static_cast<long long>(jobs)),
         TablePrinter::num(static_cast<long long>(r.completed)),
         TablePrinter::num(r.journal.checkpoints),
         TablePrinter::num(r.journal.records),
         TablePrinter::num(r.makespan_s), TablePrinter::num(overhead),
         TablePrinter::num(1e3 * recover_s)});
  }

  // Phase 2: recovery replay time vs journal length (cadence 1).
  for (const std::size_t sweep_jobs : {4u, 8u, 16u}) {
    const fs::path scratch =
        scratch_root / ("jobs_" + std::to_string(sweep_jobs));
    const RunResult r =
        run_service(service_config(boards, quantum, sweep_jobs),
                    make_jobs(sweep_jobs, n, t_end), scratch, 1, true);
    const double recover_s = replay_seconds((scratch / "serve.wal").string());
    table.print_row(
        {"replay", "1", TablePrinter::num(static_cast<long long>(sweep_jobs)),
         TablePrinter::num(static_cast<long long>(r.completed)),
         TablePrinter::num(r.journal.checkpoints),
         TablePrinter::num(r.journal.records), TablePrinter::num(r.makespan_s),
         "-", TablePrinter::num(1e3 * recover_s)});
  }

  g6::bench::export_telemetry(tf, nullptr);
  fs::remove_all(scratch_root);

  std::printf("\nreading: cadence 1 buys the fastest recovery (resume from\n"
              "the last quantum) at the highest steady-state cost; cadence 0\n"
              "journals lifecycle only and re-runs affected jobs from\n"
              "scratch on recovery. Replay time grows linearly with the\n"
              "journal; it stays far below re-running the work.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
