// Serving-layer throughput — jobs/hour and wait-time percentiles vs job
// mix (docs/SERVING.md).
//
// The GRAPE-6 facility was operated as a shared machine: many user jobs
// multiplexed onto the partitioned hardware (PAPER.md Sec 5). This bench
// measures what the software twin's serving layer delivers for several
// representative mixes on one emulated machine:
//
//   uniform-small    many 1-board batch jobs, no contention beyond count
//   interactive-mix  small interactive jobs arriving alongside batch work
//   big-and-small    whole-machine jobs forcing preemption trains
//   degraded         the uniform mix with a mid-run board death
//
// For each mix: jobs/hour (completed / makespan), p50/p95/p99 wait
// (submit -> first quantum) and mean per-job slowdown (run wall seconds
// per simulated time unit). Rows mirror to bench_out/serve_throughput.csv
// and the merged Eq 10 + serve.* counters export via --metrics-out
// (schema grape6-metrics-v1) for scripts/snapshot_serve_bench.py.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace g6;

struct Mix {
  const char* name;
  std::size_t jobs;
  std::size_t boards_each;      ///< boards per batch job
  std::size_t interactive;      ///< how many of the jobs are interactive
  std::size_t big_jobs;         ///< jobs wanting the whole machine
  bool board_death;
};

serve::ServiceConfig service_config(const Mix& mix, std::size_t boards,
                                    std::size_t quantum) {
  serve::ServiceConfig cfg;
  cfg.machine.boards_per_host = boards;
  cfg.machine.hosts_per_cluster = 1;
  cfg.machine.clusters = 1;
  cfg.max_queue_depth = mix.jobs + 4;
  cfg.quantum_blocksteps = quantum;
  if (mix.board_death) cfg.board_deaths.push_back({3, 0});
  return cfg;
}

std::vector<serve::JobSpec> make_jobs(const Mix& mix, std::size_t boards,
                                      std::size_t n, double t_end) {
  std::vector<serve::JobSpec> jobs;
  for (std::size_t i = 0; i < mix.jobs; ++i) {
    serve::JobSpec s;
    s.name = std::string("job-") + std::to_string(i);
    s.n = n;
    s.t_end = t_end;
    s.seed = static_cast<unsigned>(100 + i);
    if (i < mix.big_jobs) {
      s.boards = boards;  // wants the whole machine
    } else {
      s.boards = mix.boards_each;
    }
    if (i >= mix.big_jobs && i < mix.big_jobs + mix.interactive) {
      s.priority = serve::Priority::kInteractive;
      s.n = n / 2;  // interactive jobs are the small steering runs
    }
    jobs.push_back(s);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) try {
  Cli cli(argc, argv);
  const auto boards = static_cast<std::size_t>(
      cli.get_int("boards", 4, "boards in the shared machine"));
  const auto n =
      static_cast<std::size_t>(cli.get_int("n", 64, "particles per job"));
  const double t_end =
      cli.get_double("t-end", 0.0625, "integration span per job");
  const auto quantum = static_cast<std::size_t>(
      cli.get_int("quantum", 4, "scheduling quantum in blocksteps"));
  const auto jobs_per_mix = static_cast<std::size_t>(
      cli.get_int("jobs", 12, "jobs per mix"));
  const std::string csv = cli.get_string(
      "csv", "bench_out/serve_throughput.csv", "CSV mirror path");
  const g6::bench::TelemetryFlags tf = g6::bench::telemetry_flags(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Serving throughput: jobs/hour and wait percentiles vs mix");

  const Mix mixes[] = {
      {"uniform-small", jobs_per_mix, 1, 0, 0, false},
      {"interactive-mix", jobs_per_mix, 1, jobs_per_mix / 3, 0, false},
      {"big-and-small", jobs_per_mix, 1, 0, 2, false},
      {"degraded", jobs_per_mix, 1, 0, 0, true},
  };

  TablePrinter table(std::cout,
                     {"mix", "jobs", "completed", "jobs_per_hour", "p50_wait_s",
                      "p95_wait_s", "p99_wait_s", "preempt", "revoke"});
  table.mirror_csv(csv);
  table.print_header();

  obs::Eq10Accumulator merged;
  for (const Mix& mix : mixes) {
    serve::GrapeService service(service_config(mix, boards, quantum));
    serve::ServeClient client = service.client();

    std::vector<serve::JobId> ids;
    for (const serve::JobSpec& spec : make_jobs(mix, boards, n, t_end)) {
      const serve::SubmitResult r = client.submit(spec);
      if (r) ids.push_back(r.id);
    }
    service.run_until_drained();

    const serve::ServiceStats& st = service.stats();
    std::vector<double> waits;
    for (serve::JobId id : ids) waits.push_back(client.report(id).wait_s);
    const double jobs_per_hour =
        st.makespan_s > 0.0
            ? 3600.0 * static_cast<double>(st.completed) / st.makespan_s
            : 0.0;
    merged.merge(st.eq10);

    table.print_row({mix.name,
                     TablePrinter::num(static_cast<long long>(mix.jobs)),
                     TablePrinter::num(static_cast<long long>(st.completed)),
                     TablePrinter::num(jobs_per_hour),
                     TablePrinter::num(percentile(waits, 50.0)),
                     TablePrinter::num(percentile(waits, 95.0)),
                     TablePrinter::num(percentile(waits, 99.0)),
                     TablePrinter::num(static_cast<long long>(st.preemptions)),
                     TablePrinter::num(static_cast<long long>(st.revocations))});
  }

  g6::bench::export_telemetry(tf, &merged);

  std::printf("\nreading: the interactive mix keeps p50 wait near zero for\n"
              "the steering jobs at the cost of batch tail latency; whole-\n"
              "machine jobs are the preemption stress; the degraded mix\n"
              "shows revocation + re-queue keeping throughput within one\n"
              "board of the healthy machine.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
