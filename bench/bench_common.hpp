#pragma once
// Shared plumbing for the figure-reproduction benches: calibration with a
// shared on-disk cache, standard size grids, and table output.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/grape6.hpp"

namespace g6::bench {

/// Calibration options used by every figure bench (overridable via flags).
inline CalibrationOptions standard_calibration(Cli& cli) {
  CalibrationOptions opt;
  opt.t_span = cli.get_double("calib-span", 0.25, "calibration integration span");
  const auto max_n =
      static_cast<std::size_t>(cli.get_int("calib-max-n", 2048, "largest calibration N"));
  opt.sizes.clear();
  for (std::size_t n = 256; n <= max_n; n *= 2) opt.sizes.push_back(n);
  opt.threads = static_cast<unsigned>(cli.get_int("threads", 1, "force threads"));
  return opt;
}

/// Calibrated scaling with the shared cache (wiped by --recalibrate).
/// Progress goes through the leveled logger: G6_LOG_LEVEL=quiet silences it.
inline TraceScaling scaling_for(SofteningLaw law, const CalibrationOptions& opt,
                                bool recalibrate) {
  const std::string cache = calibration_cache_path(law);
  if (recalibrate) std::remove(cache.c_str());
  obs::log_info("calibration %s ...", softening_name(law));
  const TraceScaling s = calibrated_scaling(law, opt, cache);
  obs::log_info(
      "calibration %s: R(N)=%.3g*N^%.3f (r2=%.3f), block=%.3g*N^%.3f of N, "
      "sigma=%.2f",
      softening_name(law), s.steps_rate.coefficient, s.steps_rate.exponent,
      s.steps_rate.r2, s.block_fraction.coefficient, s.block_fraction.exponent,
      s.log_block_sigma);
  return s;
}

/// Standard telemetry flags for every bench/driver: --metrics-out,
/// --trace-out and --timeseries-out; asking for a trace turns span
/// collection on. The time series only has rows when something ticked the
/// global MetricsSampler (the serve scheduler samples once per round).
struct TelemetryFlags {
  std::string metrics_out;
  std::string trace_out;
  std::string timeseries_out;
};

inline TelemetryFlags telemetry_flags(Cli& cli) {
  TelemetryFlags f;
  f.metrics_out =
      cli.get_string("metrics-out", "", "write metrics JSON here (\"\" = off)");
  f.trace_out = cli.get_string("trace-out", "",
                               "write Chrome trace JSON here (\"\" = off)");
  f.timeseries_out = cli.get_string(
      "timeseries-out", "",
      "write time-series JSON here (\"\" = off; rows only from serve runs)");
  if (!f.trace_out.empty()) obs::Tracer::global().enable();
  return f;
}

/// End-of-run export; call once after the measurement loop.
inline void export_telemetry(const TelemetryFlags& f,
                             const obs::Eq10Accumulator* eq10 = nullptr) {
  obs::export_metrics_json(f.metrics_out, eq10);
  obs::export_chrome_trace(f.trace_out);
  obs::export_timeseries_json(f.timeseries_out);
}

/// Paper-figure N grid: 512 ... hi.
inline std::vector<std::size_t> figure_grid(std::size_t hi,
                                            std::size_t per_decade = 4) {
  return log_grid(512, hi, per_decade);
}

}  // namespace g6::bench
