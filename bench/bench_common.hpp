#pragma once
// Shared plumbing for the figure-reproduction benches: calibration with a
// shared on-disk cache, standard size grids, and table output.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/grape6.hpp"

namespace g6::bench {

/// Calibration options used by every figure bench (overridable via flags).
inline CalibrationOptions standard_calibration(Cli& cli) {
  CalibrationOptions opt;
  opt.t_span = cli.get_double("calib-span", 0.25, "calibration integration span");
  const auto max_n =
      static_cast<std::size_t>(cli.get_int("calib-max-n", 2048, "largest calibration N"));
  opt.sizes.clear();
  for (std::size_t n = 256; n <= max_n; n *= 2) opt.sizes.push_back(n);
  opt.threads = static_cast<unsigned>(cli.get_int("threads", 1, "force threads"));
  return opt;
}

/// Calibrated scaling with the shared cache (wiped by --recalibrate).
inline TraceScaling scaling_for(SofteningLaw law, const CalibrationOptions& opt,
                                bool recalibrate) {
  const std::string cache = calibration_cache_path(law);
  if (recalibrate) std::remove(cache.c_str());
  std::fprintf(stderr, "[calibration] %s ... ", softening_name(law));
  std::fflush(stderr);
  const TraceScaling s = calibrated_scaling(law, opt, cache);
  std::fprintf(stderr,
               "R(N)=%.3g*N^%.3f (r2=%.3f), block=%.3g*N^%.3f of N, sigma=%.2f\n",
               s.steps_rate.coefficient, s.steps_rate.exponent, s.steps_rate.r2,
               s.block_fraction.coefficient, s.block_fraction.exponent,
               s.log_block_sigma);
  return s;
}

/// Paper-figure N grid: 512 ... hi.
inline std::vector<std::size_t> figure_grid(std::size_t hi,
                                            std::size_t per_decade = 4) {
  return log_grid(512, hi, per_decade);
}

}  // namespace g6::bench
