// Figure 13 — single-node performance.
//
// "The calculation speed of 1-host, 4-board system in Gflops, plotted as
// a function of the number of particles in the system", for the three
// softening choices of Sec 4: eps = 1/64, eps = 1/[8(2N)^(1/3)], and
// eps = 4/N. Paper features to reproduce: speed practically independent
// of the softening; > 1 Tflops around N = 2e5; saturation toward the
// ~3.9 Tflops single-host peak at large N.

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto max_n = static_cast<std::size_t>(
      cli.get_int("max-n", 1'048'576, "largest N of the sweep"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  const CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout, "Figure 13: single-node (1 host, 4 boards) speed vs N");

  const SystemConfig sys = SystemConfig::single_host();
  std::printf("machine: %zu chips, peak %.2f Tflops (this configuration)\n",
              sys.machine.chips_per_host(), MachineModel(sys).peak_flops() / 1e12);

  const SofteningLaw laws[] = {SofteningLaw::kConstant, SofteningLaw::kCubeRoot,
                               SofteningLaw::kOverN};
  std::vector<TraceScaling> scalings;
  for (auto law : laws) scalings.push_back(bench::scaling_for(law, copt, recal));

  TablePrinter table(std::cout, {"N", "Gflops(eps=1/64)", "Gflops(cbrt)",
                                 "Gflops(4/N)", "steps/s(1/64)"});
  table.mirror_csv(bench_csv_path("fig13_single_node"));
  table.print_header();

  for (std::size_t n : bench::figure_grid(max_n)) {
    std::vector<SpeedPoint> pts;
    for (std::size_t k = 0; k < 3; ++k) {
      pts.push_back(measure_speed_synthetic(n, laws[k], sys, scalings[k]));
    }
    table.print_row({TablePrinter::num(static_cast<long long>(n)),
                     TablePrinter::num(pts[0].gflops()),
                     TablePrinter::num(pts[1].gflops()),
                     TablePrinter::num(pts[2].gflops()),
                     TablePrinter::num(pts[0].steps_per_second)});
  }

  std::printf("\npaper checkpoints: speed ~independent of softening; better than\n"
              "1 Tflops (1000 Gflops) at N = 2e5 (Sec 4.4).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
