// Equation (10) — T_single = T_host + T_comm + T_GRAPE — made visible.
//
// The paper's whole tuning story (Sec 4.4) is about which term dominates
// where. This bench prints the per-step breakdown for the three machine
// configurations across N, identifying the bottleneck in each regime.

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  CalibrationOptions copt = bench::standard_calibration(cli);
  const bench::TelemetryFlags tf = bench::telemetry_flags(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout, "Eq 10 breakdown: T_host + T_comm(DMA+net) + T_GRAPE");

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  struct Config {
    const char* name;
    SystemConfig sys;
  } configs[] = {
      {"single host", SystemConfig::single_host()},
      {"1 cluster (4 hosts)", SystemConfig::cluster(4)},
      {"4 clusters (16 hosts)", SystemConfig::multi_cluster(4)},
  };

  // Every row is one obs::Eq10Accumulator filled from the machine model —
  // the same struct real runs fill with wall time, so the bottleneck
  // classification and the exported JSON schema are shared.
  obs::Eq10Accumulator merged;
  for (const auto& c : configs) {
    std::printf("\n-- %s --\n", c.name);
    const MachineModel model(c.sys);
    TablePrinter table(std::cout, {"N", "host_us", "dma_us", "grape_us",
                                   "net_us", "bottleneck"});
    table.print_header();
    for (std::size_t n : log_grid(1024, 1'048'576, 2)) {
      const auto block =
          static_cast<std::size_t>(std::max(1.0, scaling.mean_block_size(n)));
      const BlockstepCost cost = model.blockstep_cost(block, n);
      obs::Eq10Accumulator acc;
      acc.add_phases(cost.host_s, cost.dma_s, cost.net_s, cost.grape_s,
                     cost.total());
      acc.add_steps(block);
      merged.merge(acc);
      const double per_step_us = 1e6 / static_cast<double>(block);
      table.print_row({TablePrinter::num(static_cast<long long>(n)),
                       TablePrinter::num(acc.host_s * per_step_us),
                       TablePrinter::num(acc.dma_s * per_step_us),
                       TablePrinter::num(acc.grape_s * per_step_us),
                       TablePrinter::num(acc.net_s * per_step_us),
                       acc.bottleneck()});
    }
  }
  bench::export_telemetry(tf, &merged);

  std::printf("\nreading (Sec 4.4): single host — DMA/host at small N, GRAPE at\n"
              "large N; multi-host — synchronization owns the small-N regime\n"
              "and recedes as blocks grow, until the pipelines dominate again.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
