// Ablation — parallel decompositions of Sec 3.2.
//
// Quantifies the design rationale for the GRAPE-6 network: per-host
// communication time per blockstep for the "copy" algorithm, the "ring"
// algorithm, the r x r host grid of [9], and the GRAPE-6 solution
// (2D *hardware* network: host-host traffic is synchronization only).

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 100'000, "system size"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout,
               "Ablation: per-host communication per blockstep (Sec 3.2)");

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);
  const auto block = static_cast<std::size_t>(scaling.mean_block_size(n));
  const NicModel nic = nics::ns83820();
  constexpr std::size_t kRecord = 104;  // full predictor data per particle

  std::printf("N = %zu, mean block = %zu, NIC = %s\n\n", n, block, nic.name.c_str());

  TablePrinter table(std::cout, {"hosts", "copy_ms", "ring_ms", "grid_ms",
                                 "g6_network_ms"});
  table.mirror_csv(bench_csv_path("ablation_parallel_algorithms"));
  table.print_header();

  for (std::size_t p : {4u, 16u, 64u}) {
    std::size_t r = 2;
    while (r * r < p) ++r;
    // GRAPE-6: board network moves the data; hosts only pay the barrier
    // and the dt metadata.
    const double g6net = butterfly_barrier_time(p, nic) +
                         butterfly_allgather_time(p, (block / p + 1) * 8, nic);
    table.print_row(
        {TablePrinter::num(static_cast<long long>(p)),
         TablePrinter::num(copy_algorithm_comm_time(p, block, kRecord, nic) * 1e3),
         TablePrinter::num(ring_algorithm_comm_time(p, block, kRecord, nic) * 1e3),
         TablePrinter::num(grid_algorithm_comm_time(r, block, kRecord, nic) * 1e3),
         TablePrinter::num(g6net * 1e3)});
  }

  std::printf("\nreading (Sec 3.2): copy/ring communication per host does not\n"
              "shrink with more hosts; the 2D grid improves it by ~sqrt(p); the\n"
              "GRAPE-6 hardware network removes it from the hosts entirely,\n"
              "leaving only synchronization — which then becomes the bottleneck\n"
              "(Sec 4.4).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
