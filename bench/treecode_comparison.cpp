// Section 5 — comparison against Barnes-Hut treecodes.
//
// The paper argues in particle-steps per second: GRAPE-6 sustains
// ~3.3e5 steps/s on the 1.8M/2M-body applications; Gadget with
// individual timesteps saturates near 1e4 steps/s at 16 T3E nodes; the
// shared-timestep treecode of Warren et al. reached 2.55e6 steps/s on
// 6800-processor ASCI Red but needs >100x more steps (timestep ratio) and
// ~5x more work for comparable force accuracy.
//
// We measure our own treecode's steps/s on this machine, model the
// parallel-treecode scaling, and rebuild the paper's comparison table.

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto n_tree = static_cast<std::size_t>(
      cli.get_int("tree-n", 16384, "treecode measurement size"));
  const auto tree_steps =
      static_cast<int>(cli.get_int("tree-steps", 3, "treecode steps to time"));
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout, "Sec 5: GRAPE-6 vs Barnes-Hut treecode, steps/second");

  // GRAPE-6 sustained steps/s at the application size, from the model.
  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);
  const SpeedPoint g6pt = measure_speed_synthetic(
      1'800'000, SofteningLaw::kConstant, SystemConfig::tuned(4), scaling);

  // Our treecode measured on this CPU.
  Rng rng(5);
  const ParticleSet set = make_plummer(n_tree, rng);
  TreecodeConfig tcfg;
  tcfg.theta = 0.6;
  tcfg.eps = 1.0 / 64.0;
  TreecodeIntegrator tree(set, tcfg);
  for (int s = 0; s < tree_steps; ++s) tree.step();
  const double tree_rate = tree.steps_per_second();

  // Shared-timestep penalty (Sec 5): the ratio between smallest and
  // harmonic-mean individual timestep exceeds 100 in the applications,
  // and the low-accuracy forces cost another ~5x.
  const double shared_step_penalty = 100.0;
  const double accuracy_penalty = 5.0;

  TablePrinter table(std::cout,
                     {"code", "hardware", "steps_per_s", "effective_rel_G6"});
  table.mirror_csv(bench_csv_path("treecode_comparison"));
  table.print_header();
  const double g6_rate = g6pt.steps_per_second;
  table.print_row({"GRAPE-6 model (this work)", "2048 chips",
                   TablePrinter::num(g6_rate), "1"});
  table.print_row({"GRAPE-6 paper", "2048 chips", "3.3e5", "~1"});
  const double gadget = 1.0e4;  // paper: Gadget, 16 T3E nodes
  table.print_row({"Gadget indiv-dt (paper)", "16x T3E",
                   TablePrinter::num(gadget), TablePrinter::num(gadget / g6_rate)});
  table.print_row({"Gadget + accuracy x5 (paper)", "16x T3E",
                   TablePrinter::num(gadget / accuracy_penalty),
                   TablePrinter::num(gadget / accuracy_penalty / g6_rate)});
  const double warren = 2.55e6;
  table.print_row({"Warren et al. shared-dt (paper)", "6800x ASCI Red",
                   TablePrinter::num(warren), TablePrinter::num(warren / g6_rate)});
  table.print_row(
      {"  effective (/100 steps, /5 acc)", "6800x ASCI Red",
       TablePrinter::num(warren / shared_step_penalty / accuracy_penalty),
       TablePrinter::num(warren / shared_step_penalty / accuracy_penalty / g6_rate)});
  table.print_row({"our BH tree, shared-dt", "this CPU, 1 core",
                   TablePrinter::num(tree_rate),
                   TablePrinter::num(tree_rate / shared_step_penalty / g6_rate)});

  // Parallel-treecode scaling model (the Sec 5 Gadget discussion).
  std::printf("\nGadget-style scaling (model, single-host rate = our tree):\n");
  for (std::size_t hosts : {1u, 4u, 16u, 64u}) {
    std::printf("  %3zu hosts: %.3g steps/s\n", hosts,
                gadget_scaling_steps_per_second(tree_rate, hosts));
  }
  std::printf("\npaper conclusion: with individual timesteps required for these\n"
              "applications, treecodes on MPPs deliver ~1-3%% of GRAPE-6.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
