// Ablation — synchronization implementation (Sec 4.4).
//
// The paper replaced MPI_Barrier of MPICH/p4 with a hand-rolled butterfly
// over TCP sockets ("about two times faster") and counts the number of
// synchronization operations as a first-class cost. This bench sweeps
// both knobs on the full machine.

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const bool recal = cli.get_bool("recalibrate", false, "ignore calibration cache");
  CalibrationOptions copt = bench::standard_calibration(cli);
  if (cli.finish()) return 0;

  print_banner(std::cout, "Ablation: barrier implementation and sync-op count");

  const TraceScaling scaling =
      bench::scaling_for(SofteningLaw::kConstant, copt, recal);

  std::printf("barrier primitive cost, 16 hosts:\n");
  for (const NicModel& nic : {nics::ns83820(), nics::intel82540()}) {
    std::printf("  %-18s butterfly %7.1f us   MPICH/p4 %7.1f us\n",
                nic.name.c_str(), butterfly_barrier_time(16, nic) * 1e6,
                mpich_barrier_time(16, nic) * 1e6);
  }

  TablePrinter table(std::cout,
                     {"sync_ops/block", "barrier", "Tflops@1e5", "Tflops@1e6"});
  table.mirror_csv(bench_csv_path("ablation_sync"));
  table.print_header();

  for (std::size_t ops : {1u, 2u, 4u, 8u}) {
    for (int mpich = 0; mpich < 2; ++mpich) {
      SystemConfig sys = SystemConfig::multi_cluster(4);
      sys.sync_ops_multi_cluster = ops;
      if (mpich) {
        // MPI_Barrier of MPICH/p4: ~2x the butterfly cost; model as a
        // doubled round-trip latency on the sync path.
        sys.nic.round_trip_latency_s *= 2.0;
      }
      const SpeedPoint p5 = measure_speed_synthetic(100'000, SofteningLaw::kConstant,
                                                    sys, scaling);
      const SpeedPoint p6 = measure_speed_synthetic(
          1'000'000, SofteningLaw::kConstant, sys, scaling);
      table.print_row({TablePrinter::num(static_cast<long long>(ops)),
                       mpich ? "MPICH/p4" : "butterfly",
                       TablePrinter::num(p5.tflops()),
                       TablePrinter::num(p6.tflops())});
    }
  }

  std::printf("\nreading: at N = 1e5 every extra synchronization operation and\n"
              "the slower barrier cost visible fractions of the total speed; at\n"
              "N = 1e6 the machine is compute-bound and barely notices — the\n"
              "latency wall is a small-N phenomenon (Figs 16/18).\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
