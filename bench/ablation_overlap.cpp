// Ablation — synchronous force calls vs the async submit/wait runtime.
//
// Both paths evaluate the same block on the same emulated GRAPE and do
// the same host-side work per i-particle; the only difference is *when*
// the host work runs. sync: compute_forces(), then the host loop. async:
// submit_forces(), then consume each chunk as its forces land while later
// chunks are still in flight — the paper's host/GRAPE overlap, which is
// what lets T_host hide inside T_GRAPE in Eq 10. The host work is sized
// to a fraction of the measured force time so the overlap headroom is
// explicit (--host-frac).
//
// Expected: async < sync once N is large enough for the per-call force
// time to dwarf the submit overhead (clearly by N = 16384) and the pool
// has at least 2 threads. With --threads=1 the two paths are the same
// serial code and the ratio sits at ~1.

#include <cmath>

#include "bench_common.hpp"

namespace {

/// Host-side stand-in work: `iters` dependent FLOPs per i-particle.
/// Returns a sink value so the loop cannot be optimized away.
double host_work(std::size_t lo, std::size_t hi, std::size_t iters) {
  double sink = 0.0;
  for (std::size_t i = lo; i < hi; ++i) {
    double x = static_cast<double>(i % 97) + 1.5;
    for (std::size_t k = 0; k < iters; ++k) {
      x = std::fma(x, 0.9999999, 1e-9);
    }
    sink += x;
  }
  return sink;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto block_n = static_cast<std::size_t>(
      cli.get_int("block", 256, "i-particles per force call"));
  const int reps = cli.get_int("reps", 5, "timed calls per configuration");
  const auto threads = static_cast<unsigned>(
      cli.get_int("threads", 0, "pool threads (0 = auto)"));
  const double host_frac = cli.get_double(
      "host-frac", 0.5, "host work per call as a fraction of the force time");
  const auto n_max = static_cast<std::size_t>(
      cli.get_int("n-max", 49152, "largest particle count"));
  const auto telemetry = bench::telemetry_flags(cli);
  if (cli.finish()) return 0;

  exec::ThreadPool::set_global_threads(threads);
  const unsigned width = exec::ThreadPool::global().parallelism();
  print_banner(std::cout, "Ablation: sync force calls vs async submit/wait");
  std::printf("pool parallelism %u, block %zu, host work = %.0f%% of force "
              "time\n", width, block_n, 100.0 * host_frac);
  if (std::thread::hardware_concurrency() <= 1) {
    std::printf("NOTE: 1 hardware core — the emulated pipeline and the host\n"
                "work time-share the CPU, so wall-clock speedup is capped at\n"
                "~1; model_speedup shows the overlap a real (or multi-core)\n"
                "GRAPE realizes.\n");
  }
  std::printf("\n");

  // Calibrate the FLOP loop once so --host-frac means seconds, not iters.
  const std::size_t probe_iters = 2000000;
  const double probe0 = obs::monotonic_seconds();
  const double probe_sink = host_work(0, 8, probe_iters);
  const double flop_s =
      (obs::monotonic_seconds() - probe0) / (8.0 * static_cast<double>(probe_iters));

  const double eps = 1.0 / 64.0;
  TablePrinter table(std::cout, {"N", "sync_s", "async_s", "speedup",
                                 "hidden_host_s", "model_speedup"});
  table.mirror_csv(bench_csv_path("ablation_overlap"));
  table.print_header();

  double total_sink = probe_sink;
  for (std::size_t n : {std::size_t{4096}, std::size_t{16384},
                        std::size_t{49152}}) {
    if (n > n_max) continue;
    Rng rng(7 + static_cast<unsigned>(n));
    const ParticleSet s = make_plummer(n, rng);
    std::vector<JParticle> js(n);
    for (std::size_t i = 0; i < n; ++i) {
      js[i].mass = s[i].mass;
      js[i].pos = s[i].pos;
      js[i].vel = s[i].vel;
    }
    GrapeForceEngine hw(MachineConfig::single_host(), NumberFormats{}, eps);
    hw.load_particles(js);

    std::vector<PredictedState> block(block_n);
    for (std::size_t k = 0; k < block_n; ++k) {
      block[k] = {js[k].pos, js[k].vel, js[k].mass,
                  static_cast<std::uint32_t>(k)};
    }
    std::vector<Force> forces(block_n);

    // Warm up (stabilizes the engine's exponent cache) and measure the
    // bare force time to size the host work.
    const double w0 = obs::monotonic_seconds();
    hw.compute_forces(0.0, block, forces);
    const double force_s = obs::monotonic_seconds() - w0;
    const std::size_t iters = static_cast<std::size_t>(
        std::max(1.0, host_frac * force_s /
                          (static_cast<double>(block_n) * flop_s)));

    // Bare force time (no host work) — the floor any overlap aims for.
    double bare_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double t0 = obs::monotonic_seconds();
      hw.compute_forces(0.0, block, forces);
      bare_s += obs::monotonic_seconds() - t0;
    }

    double sync_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double t0 = obs::monotonic_seconds();
      hw.compute_forces(0.0, block, forces);
      total_sink += host_work(0, block_n, iters);
      sync_s += obs::monotonic_seconds() - t0;
    }

    double async_s = 0.0;
    double hidden_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      const double t0 = obs::monotonic_seconds();
      ForceTicket tk = hw.submit_forces(0.0, block, forces);
      for (std::size_t c = 0; c < tk.chunk_count(); ++c) {
        tk.wait_chunk(c);
        const auto [lo, hi] = tk.chunk_range(c);
        const double h0 = obs::monotonic_seconds();
        total_sink += host_work(lo, hi, iters);
        hidden_s += obs::monotonic_seconds() - h0;
      }
      tk.wait();
      async_s += obs::monotonic_seconds() - t0;
    }
    // What a machine whose pipeline runs beside the host (real GRAPE
    // boards, or a multi-core emulation) gains from the overlap: serial
    // cost force+host vs overlapped cost max(force, host), from the
    // measured components.
    const double model_speedup = sync_s / std::max(bare_s, hidden_s);

    table.print_row({TablePrinter::num(static_cast<long long>(n)),
                     TablePrinter::num(sync_s / reps),
                     TablePrinter::num(async_s / reps),
                     TablePrinter::num(sync_s / async_s),
                     TablePrinter::num(hidden_s / reps),
                     TablePrinter::num(model_speedup)});
  }

  std::printf("\nreading: speedup > 1 means the submit/wait runtime hides the\n"
              "host work behind in-flight force chunks; the hidden seconds\n"
              "column is what exec.overlap.host_s reports in a real run — host\n"
              "time Eq 10 must not double-count against T_GRAPE.\n"
              "(sink %.3g)\n", total_sink);
  bench::export_telemetry(telemetry);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
