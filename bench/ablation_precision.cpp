// Ablation — pipeline word width vs integration accuracy.
//
// GRAPE-6 computes forces in a ~single-precision pipeline (Sec 3.4); this
// sweep shows why that is enough for the Hermite integrator and where it
// would stop being enough: force errors scale as 2^-bits, and the energy
// drift over a fixed span follows until the truncation error of the
// integrator itself dominates.

#include <cmath>

#include "bench_common.hpp"

int main(int argc, char** argv) try {
  using namespace g6;
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 128, "particle count"));
  const double t_end = cli.get_double("t-end", 0.125, "integration span");
  if (cli.finish()) return 0;

  print_banner(std::cout, "Ablation: pipeline fraction bits vs force error and dE/E");

  Rng rng(11);
  const double eps = 1.0 / 64.0;
  const ParticleSet initial = make_plummer(n, rng);
  const double e0 = compute_energy(initial.bodies(), eps).total();

  // Reference forces in double precision.
  std::vector<JParticle> js(n);
  std::vector<PredictedState> block(n);
  for (std::size_t i = 0; i < n; ++i) {
    js[i].mass = initial[i].mass;
    js[i].pos = initial[i].pos;
    js[i].vel = initial[i].vel;
    block[i] = {initial[i].pos, initial[i].vel, initial[i].mass,
                static_cast<std::uint32_t>(i)};
  }
  DirectForceEngine ref(eps);
  ref.load_particles(js);
  std::vector<Force> fref(n);
  ref.compute_forces(0.0, block, fref);

  MachineConfig mc = MachineConfig::single_host();
  mc.boards_per_host = 1;

  TablePrinter table(std::cout,
                     {"frac_bits", "rms_force_rel_err", "dE_over_E", "retries"});
  table.mirror_csv(bench_csv_path("ablation_precision"));
  table.print_header();

  for (int bits : {12, 16, 20, 24, 52}) {
    NumberFormats fmt;
    fmt.pipeline = FloatFormat(bits, -126, 127);
    fmt.velocity = fmt.pipeline;
    fmt.predictor = FloatFormat(std::max(8, bits - 4), -126, 127);

    GrapeForceEngine hw(mc, fmt, eps);
    hw.load_particles(js);
    std::vector<Force> fhw(n);
    hw.compute_forces(0.0, block, fhw);

    double err2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      err2 += norm2(fhw[i].acc - fref[i].acc) / norm2(fref[i].acc);
    }
    const double rms = std::sqrt(err2 / static_cast<double>(n));

    GrapeForceEngine hw2(mc, fmt, eps);
    HermiteConfig cfg;
    cfg.eta = 0.02;
    HermiteIntegrator integ(initial, hw2, cfg);
    integ.evolve(t_end);
    const double e1 =
        compute_energy(integ.state_at_current_time().bodies(), eps).total();

    table.print_row({TablePrinter::num(static_cast<long long>(bits)),
                     TablePrinter::num(rms),
                     TablePrinter::num(std::fabs((e1 - e0) / e0)),
                     TablePrinter::num(static_cast<long long>(hw2.stats().retries))});
  }

  std::printf("\nreading: force error halves per extra bit; beyond ~20-24 bits the\n"
              "Hermite truncation error dominates dE/E — the GRAPE-6 word sizes\n"
              "are 'just enough', which is what makes the chip small and fast.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
