# Sanitizer configuration for the GRAPE-6 software twin.
#
# Exposed as an interface target (grape6_sanitizers) so the flags apply
# uniformly; the top-level list file attaches it with link_libraries()
# before any subdirectory is added, covering libraries, tests, tools,
# benches and examples alike.
#
# Select with the cache variable:
#
#   -DGRAPE6_SANITIZE=address,undefined   # ASan + UBSan (asan-ubsan preset)
#   -DGRAPE6_SANITIZE=thread              # TSan        (tsan preset)
#   -DGRAPE6_SANITIZE=memory              # MSan        (clang only, no preset yet)
#
# ASan/TSan are mutually exclusive; UBSan is folded into the address run.
# -fno-sanitize-recover=all turns every UBSan diagnostic into a hard
# failure so ctest goes red on the first finding instead of logging and
# continuing.

set(GRAPE6_SANITIZE "" CACHE STRING
    "Sanitizer set: empty, 'address,undefined', 'thread', or 'memory'")
set_property(CACHE GRAPE6_SANITIZE PROPERTY STRINGS
             "" "address,undefined" "thread" "memory")

add_library(grape6_sanitizers INTERFACE)

if(GRAPE6_SANITIZE)
  if(GRAPE6_SANITIZE STREQUAL "address,undefined")
    set(_g6_san_flags -fsanitize=address,undefined -fno-sanitize-recover=all)
  elseif(GRAPE6_SANITIZE STREQUAL "thread")
    set(_g6_san_flags -fsanitize=thread)
  elseif(GRAPE6_SANITIZE STREQUAL "memory")
    if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      message(FATAL_ERROR
        "GRAPE6_SANITIZE=memory requires clang (an instrumented standard "
        "library); configure with CMAKE_CXX_COMPILER=clang++")
    endif()
    set(_g6_san_flags -fsanitize=memory -fsanitize-memory-track-origins)
  else()
    message(FATAL_ERROR
      "unknown GRAPE6_SANITIZE value '${GRAPE6_SANITIZE}' "
      "(expected 'address,undefined', 'thread', or 'memory')")
  endif()

  target_compile_options(grape6_sanitizers INTERFACE
    ${_g6_san_flags} -fno-omit-frame-pointer -g)
  target_link_options(grape6_sanitizers INTERFACE ${_g6_san_flags})
  message(STATUS "Sanitizers enabled: ${GRAPE6_SANITIZE}")
endif()

# Clang Thread Safety Analysis (-Wthread-safety): checks the
# G6_GUARDED_BY / G6_REQUIRES annotations from util/thread_annotations.hpp
# at compile time. Clang-only — the annotations are no-op macros on GCC —
# so requesting it under another compiler is a configuration error, not a
# silent skip. -Wthread-safety-beta adds the lock-ordering checks
# (G6_ACQUIRED_BEFORE/AFTER). Enabled by the clang-analysis preset.
option(GRAPE6_THREAD_SAFETY
       "Enable clang -Wthread-safety analysis (clang only)" OFF)

if(GRAPE6_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
      "GRAPE6_THREAD_SAFETY requires clang (the thread safety attributes "
      "are no-ops elsewhere); configure with CMAKE_CXX_COMPILER=clang++")
  endif()
  target_compile_options(grape6_sanitizers INTERFACE
    -Wthread-safety -Wthread-safety-beta -Werror=thread-safety-analysis
    -Werror=thread-safety-attributes -Werror=thread-safety-precise)
  message(STATUS "Clang thread safety analysis enabled")
endif()
